package comm

import "fmt"

// Additional collectives beyond what the sort's hot path needs: scatter,
// reduction trees, prefix scans, and ring/pairwise variants of the dense
// collectives. They complete the MPI-style surface for applications
// built on the runtime and serve as algorithmic alternatives in the
// benchmarks (ring allgather versus gather+bcast, pairwise versus eager
// all-to-all).

const (
	tagScatter int32 = -1024 - iota*16
	tagReduce
	tagRing
	tagPairwise
)

// tagExscanBase gets its own band: the scan uses one tag per doubling
// round, up to 64 of them.
const tagExscanBase int32 = -2048

// Scatter distributes parts[i] from root to rank i and returns each
// rank's part. Only root's parts argument is consulted.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	p := len(c.group)
	if root < 0 || root >= p {
		return nil, fmt.Errorf("comm: scatter root %d out of range", root)
	}
	if c.rank == root {
		if len(parts) != p {
			return nil, fmt.Errorf("comm: scatter needs %d parts, got %d", p, len(parts))
		}
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			if err := c.sendInternal(r, tagScatter, parts[r]); err != nil {
				return nil, fmt.Errorf("comm: scatter send to %d: %w", r, err)
			}
		}
		return append([]byte(nil), parts[root]...), nil
	}
	buf, err := c.recvInternal(root, tagScatter)
	if err != nil {
		return nil, fmt.Errorf("comm: scatter recv: %w", err)
	}
	return buf, nil
}

// Reduce folds one value per rank with op down a binomial tree to root,
// which receives the result (other ranks receive 0). op must be
// associative; the reduction order is deterministic for a fixed size.
func (c *Comm) Reduce(root int, v int64, op func(a, b int64) int64) (int64, error) {
	p := len(c.group)
	if root < 0 || root >= p {
		return 0, fmt.Errorf("comm: reduce root %d out of range", root)
	}
	// Rotate so root is virtual rank 0, then fold up the tree.
	vr := (c.rank - root + p) % p
	acc := v
	for mask := 1; mask < p; mask *= 2 {
		if vr&mask != 0 {
			parent := ((vr &^ mask) + root) % p
			if err := c.sendInternal(parent, tagReduce, encodeInts([]int64{acc})); err != nil {
				return 0, fmt.Errorf("comm: reduce send: %w", err)
			}
			return 0, nil
		}
		childVr := vr | mask
		if childVr >= p {
			continue
		}
		child := (childVr + root) % p
		buf, err := c.recvInternal(child, tagReduce)
		if err != nil {
			return 0, fmt.Errorf("comm: reduce recv: %w", err)
		}
		vals, err := decodeInts(buf)
		if err != nil || len(vals) != 1 {
			return 0, fmt.Errorf("comm: reduce payload from rank %d", child)
		}
		acc = op(acc, vals[0])
	}
	return acc, nil
}

// ExScan computes the exclusive prefix reduction: rank r receives
// op(v_0, ..., v_{r-1}), with identity on rank 0. This is what turns
// per-rank counts into global displacements.
func (c *Comm) ExScan(v, identity int64, op func(a, b int64) int64) (int64, error) {
	p := len(c.group)
	acc := identity // exclusive prefix so far
	carry := v      // inclusive contribution to forward
	for dist := 1; dist < p; dist *= 2 {
		tag := tagExscanBase - int32(bitsLen(dist))
		if peer := c.rank + dist; peer < p {
			if err := c.sendInternal(peer, tag, encodeInts([]int64{carry})); err != nil {
				return 0, fmt.Errorf("comm: exscan send: %w", err)
			}
		}
		if peer := c.rank - dist; peer >= 0 {
			buf, err := c.recvInternal(peer, tag)
			if err != nil {
				return 0, fmt.Errorf("comm: exscan recv: %w", err)
			}
			vals, err := decodeInts(buf)
			if err != nil || len(vals) != 1 {
				return 0, fmt.Errorf("comm: exscan payload")
			}
			acc = op(vals[0], acc)
			carry = op(vals[0], carry)
		}
	}
	return acc, nil
}

func bitsLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// RingAllgather is Allgather via the ring algorithm: p-1 steps, each
// rank forwarding the block it received last step. It moves the same
// bytes as the flat gather+bcast but spreads them across all links —
// the bandwidth-optimal choice on real networks.
func (c *Comm) RingAllgather(data []byte) ([][]byte, error) {
	p := len(c.group)
	out := make([][]byte, p)
	out[c.rank] = append([]byte(nil), data...)
	if p == 1 {
		return out, nil
	}
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	block := c.rank
	for step := 0; step < p-1; step++ {
		if err := c.sendInternal(next, tagRing, out[block]); err != nil {
			return nil, fmt.Errorf("comm: ring send step %d: %w", step, err)
		}
		incoming := (block - 1 + p) % p
		buf, err := c.recvInternal(prev, tagRing)
		if err != nil {
			return nil, fmt.Errorf("comm: ring recv step %d: %w", step, err)
		}
		out[incoming] = buf
		block = incoming
	}
	return out, nil
}

// PairwiseAlltoall is Alltoall via the pairwise-exchange algorithm: at
// step k every rank exchanges with rank^k (power-of-two sizes) or with
// (rank±k) mod p otherwise. Unlike the eager Alltoall it keeps at most
// one message in flight per rank, bounding buffer usage — the variant
// of choice when per-rank memory is tight.
func (c *Comm) PairwiseAlltoall(parts [][]byte) ([][]byte, error) {
	p := len(c.group)
	if len(parts) != p {
		return nil, fmt.Errorf("comm: pairwise alltoall needs %d parts, got %d", p, len(parts))
	}
	out := make([][]byte, p)
	out[c.rank] = append([]byte(nil), parts[c.rank]...)
	if p == 1 {
		return out, nil
	}
	if p&(p-1) == 0 {
		// XOR schedule: step k pairs rank with rank^k.
		for k := 1; k < p; k++ {
			peer := c.rank ^ k
			if err := c.sendInternal(peer, tagPairwise, parts[peer]); err != nil {
				return nil, fmt.Errorf("comm: pairwise send step %d: %w", k, err)
			}
			buf, err := c.recvInternal(peer, tagPairwise)
			if err != nil {
				return nil, fmt.Errorf("comm: pairwise recv step %d: %w", k, err)
			}
			out[peer] = buf
		}
		return out, nil
	}
	// Shift schedule for arbitrary p.
	for k := 1; k < p; k++ {
		sendTo := (c.rank + k) % p
		recvFrom := (c.rank - k + p) % p
		if err := c.sendInternal(sendTo, tagPairwise, parts[sendTo]); err != nil {
			return nil, fmt.Errorf("comm: pairwise send step %d: %w", k, err)
		}
		buf, err := c.recvInternal(recvFrom, tagPairwise)
		if err != nil {
			return nil, fmt.Errorf("comm: pairwise recv step %d: %w", k, err)
		}
		out[recvFrom] = buf
	}
	return out, nil
}
