// Package comm is an MPI-style message-passing runtime: ranked processes
// exchanging tagged byte messages point-to-point, with the collectives
// (barrier, broadcast, gather, all-gather, all-to-all) and communicator
// splitting that SDS-Sort needs. It is the substrate the paper gets from
// Cray MPI on Edison; here it runs over pluggable transports — an
// in-process transport (goroutine ranks, channel-free mailboxes) and a
// TCP transport (package tcpcomm) for genuinely distributed runs.
//
// Semantics mirror MPI where SDS-Sort depends on them:
//
//   - Messages between a (sender, receiver, communicator, tag) tuple are
//     delivered in send order (non-overtaking), which the stable version
//     of SDS-Sort relies on to keep duplicate keys rank-ordered.
//   - Communicators isolate message contexts: traffic on a communicator
//     produced by Split can never match receives on its parent.
//   - Isend/Irecv return Requests with Test/Wait/WaitAny, the primitives
//     behind the paper's overlapped all-to-all (SdssAlltoallvAsync).
package comm

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
)

// Transport moves tagged byte messages between world ranks. Transports
// must deliver messages for a given (src, dst, ctx, tag) in send order
// and must allow Send to complete without a matching Recv having been
// posted (buffered, eager semantics).
type Transport interface {
	// Rank is this process's rank in the world (0..Size-1).
	Rank() int
	// Size is the number of ranks in the world.
	Size() int
	// Node identifies the physical node this rank runs on; ranks with
	// equal Node values share memory/locality (MPI_COMM_TYPE_SHARED).
	Node() int
	// NodeOf reports the node of an arbitrary world rank.
	NodeOf(rank int) int
	// Send delivers data to world rank dst. The transport must not
	// retain data after Send returns; callers may reuse the buffer.
	Send(dst int, ctx uint64, tag int32, data []byte) error
	// Recv blocks until a message from world rank src with the given
	// context and tag arrives, and returns its payload.
	Recv(src int, ctx uint64, tag int32) ([]byte, error)
	// Close releases transport resources for this rank.
	Close() error
}

// CancelableTransport is implemented by transports whose blocking Recv
// can be abandoned: RecvCancel behaves like Recv but returns a wrapped
// ErrCanceled once cancel is closed, without consuming any message.
// The waker (whoever closes cancel) must also nudge the transport —
// for the in-process fabric that is World.Interrupt — so a receive
// already parked inside the transport re-checks the channel. The
// persistent job engine uses this to abort a failed job's collectives
// without tearing down the shared fabric.
type CancelableTransport interface {
	Transport
	RecvCancel(src int, ctx uint64, tag int32, cancel <-chan struct{}) ([]byte, error)
}

// Reserved internal tag space. User tags must be non-negative; all
// internal collective traffic uses negative tags so it can never match a
// user receive on the same communicator.
const (
	tagBarrier int32 = -1 - iota*16 // 16 tags reserved per collective for rounds
	tagBcast
	tagGather
	tagAllgather
	tagAlltoall
	tagSplit
	tagScan
	tagBitonic // reserved for distributed bitonic sort rounds
)

// ErrClosed is returned by operations on a closed communicator/transport.
var ErrClosed = errors.New("comm: closed")

// Comm is a communicator: a group of ranks with an isolated message
// context. The zero value is not usable; obtain one from New or Split.
type Comm struct {
	tr    Transport
	group []int  // world ranks of members, index = communicator rank
	rank  int    // my rank within group
	ctx   uint64 // message context, unique per communicator
	name  string // hierarchical name the context is derived from
	owned bool   // whether Close tears down the transport

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on any request completion
	splitSeq int        // number of Splits performed, for child naming
}

// New wraps a transport as the world communicator. Every rank of the
// world must call New on its own transport instance.
func New(tr Transport) *Comm {
	return NewNamed(tr, "world")
}

// NewNamed is New with an explicit communicator name. The name seeds
// the context hash that tags every frame, so two worlds with different
// names never exchange frames even over a shared fabric — recovery
// epochs use this ("world@e1", "world@e2", ...) to make any straggling
// frame from a torn-down epoch undeliverable in the next one. All
// ranks of a world must of course agree on the name.
func NewNamed(tr Transport, name string) *Comm {
	c := Attach(tr, name)
	c.owned = true
	return c
}

// Attach is NewNamed without transport ownership: the returned world
// communicator spans every rank of tr and isolates its traffic under
// name's context, but its Close never tears the transport down. This is
// the constructor for multiplexing several communicators — one per job
// — over one long-lived fabric: each job attaches under its own name
// ("world/job0", "world/job1", ...) and discards its communicator
// without disturbing the fabric or its sibling jobs. All ranks must of
// course agree on the name.
func Attach(tr Transport, name string) *Comm {
	group := make([]int, tr.Size())
	for i := range group {
		group[i] = i
	}
	c := &Comm{tr: tr, group: group, rank: tr.Rank(), name: name, ctx: ctxOf(name)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// AttachGroup is Attach restricted to an explicit subset of the
// transport's world ranks — the membership-change primitive behind
// degraded-mode resume. The survivors of a rank failure each call it
// with the same base name and the same group (world ranks, strictly
// ascending); the returned communicator spans exactly those ranks,
// renumbered 0..len(group)-1 in group order, over the still-live
// transport: no fabric teardown, no re-registration. The calling rank
// must be a member.
//
// The message context is derived from the name *and* the member list
// (the group is folded into the communicator's name, so every derived
// Split/SplitByNode context inherits it too). Two shrunken worlds that
// disagree on who survived therefore never exchange a frame — a
// membership disagreement surfaces as a timeout on the first
// collective, not as records delivered into the wrong world.
//
// Like Attach, the result never owns the transport.
func AttachGroup(tr Transport, name string, group []int) (*Comm, error) {
	if len(group) == 0 {
		return nil, fmt.Errorf("comm: attach group is empty")
	}
	me := -1
	for i, r := range group {
		if r < 0 || r >= tr.Size() {
			return nil, fmt.Errorf("comm: group rank %d outside world of %d", r, tr.Size())
		}
		if i > 0 && r <= group[i-1] {
			return nil, fmt.Errorf("comm: group ranks must be strictly ascending, got %d after %d", r, group[i-1])
		}
		if r == tr.Rank() {
			me = i
		}
	}
	if me < 0 {
		return nil, fmt.Errorf("comm: rank %d is not a member of group %v", tr.Rank(), group)
	}
	full := fmt.Sprintf("%s[%s]", name, groupSig(group))
	c := &Comm{
		tr:    tr,
		group: append([]int(nil), group...),
		rank:  me,
		name:  full,
		ctx:   ctxOf(full),
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// groupSig renders a member list compactly ("0.1.3") for embedding in
// a communicator name.
func groupSig(group []int) string {
	var b strings.Builder
	for i, r := range group {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	return b.String()
}

func newCond(c *Comm) *sync.Cond { return sync.NewCond(&c.mu) }

func ctxOf(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Node returns the node id of the calling rank.
func (c *Comm) Node() int { return c.tr.Node() }

// NodeOf returns the node id of communicator rank r.
func (c *Comm) NodeOf(r int) int { return c.tr.NodeOf(c.group[r]) }

// WorldRank translates a communicator rank to the underlying world rank.
func (c *Comm) WorldRank(r int) int { return c.group[r] }

// Transport exposes the underlying transport (used by the simnet
// decorator and by tests).
func (c *Comm) Transport() Transport { return c.tr }

// Send delivers data to communicator rank dst with the given tag.
// tag must be non-negative.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if err := c.checkPeer(dst, tag); err != nil {
		return err
	}
	return c.tr.Send(c.group[dst], c.ctx, int32(tag), data)
}

// Recv blocks until a message from communicator rank src with tag
// arrives and returns its payload.
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	if err := c.checkPeer(src, tag); err != nil {
		return nil, err
	}
	return c.tr.Recv(c.group[src], c.ctx, int32(tag))
}

func (c *Comm) checkPeer(r, tag int) error {
	if r < 0 || r >= len(c.group) {
		return fmt.Errorf("comm: rank %d out of range [0,%d)", r, len(c.group))
	}
	if tag < 0 {
		return fmt.Errorf("comm: negative tag %d is reserved", tag)
	}
	return nil
}

func (c *Comm) sendInternal(dst int, tag int32, data []byte) error {
	return c.tr.Send(c.group[dst], c.ctx, tag, data)
}

func (c *Comm) recvInternal(src int, tag int32) ([]byte, error) {
	return c.tr.Recv(c.group[src], c.ctx, tag)
}

// Request is an in-flight non-blocking operation, the analogue of an
// MPI_Request. It completes exactly once; Wait and Test may be called
// from the owning rank's goroutine.
type Request struct {
	c    *Comm
	done bool
	data []byte // receive payload (nil for sends)
	err  error
	// Peer is the communicator rank this request communicates with.
	Peer int
	// IsRecv reports whether the request is a receive.
	IsRecv bool
}

func (c *Comm) newRequest(peer int, recv bool) *Request {
	return &Request{c: c, Peer: peer, IsRecv: recv}
}

func (r *Request) complete(data []byte, err error) {
	r.c.mu.Lock()
	r.data = data
	r.err = err
	r.done = true
	r.c.mu.Unlock()
	r.c.cond.Broadcast()
}

// Test reports whether the request has completed, returning the payload
// for completed receives.
func (r *Request) Test() (bool, []byte, error) {
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	if !r.done {
		return false, nil, nil
	}
	return true, r.data, r.err
}

// Wait blocks until the request completes.
func (r *Request) Wait() ([]byte, error) {
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	for !r.done {
		r.c.cond.Wait()
	}
	return r.data, r.err
}

// Isend starts a non-blocking send. data must not be modified until the
// request completes (the in-process transport copies eagerly, but the
// contract matches MPI so the TCP transport can stream).
func (c *Comm) Isend(dst, tag int, data []byte) (*Request, error) {
	if err := c.checkPeer(dst, tag); err != nil {
		return nil, err
	}
	r := c.newRequest(dst, false)
	go func() {
		err := c.tr.Send(c.group[dst], c.ctx, int32(tag), data)
		r.complete(nil, err)
	}()
	return r, nil
}

// Irecv starts a non-blocking receive from communicator rank src.
func (c *Comm) Irecv(src, tag int) (*Request, error) {
	if err := c.checkPeer(src, tag); err != nil {
		return nil, err
	}
	r := c.newRequest(src, true)
	go func() {
		data, err := c.tr.Recv(c.group[src], c.ctx, int32(tag))
		r.complete(data, err)
	}()
	return r, nil
}

// WaitAny blocks until at least one not-yet-consumed request in reqs has
// completed and returns its index and payload. Completed requests must
// be tracked by the caller (pass a fresh slice excluding consumed ones,
// or use WaitAnyMask). It returns -1 if reqs is empty.
func WaitAny(reqs []*Request) (int, []byte, error) {
	if len(reqs) == 0 {
		return -1, nil, nil
	}
	c := reqs[0].c
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for i, r := range reqs {
			if r.done {
				return i, r.data, r.err
			}
		}
		c.cond.Wait()
	}
}

// WaitAnyMask is WaitAny over the subset of reqs where consumed[i] is
// false; it marks the returned index consumed. It returns -1 when every
// request has been consumed.
func WaitAnyMask(reqs []*Request, consumed []bool) (int, []byte, error) {
	if len(reqs) == 0 {
		return -1, nil, nil
	}
	c := reqs[0].c
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		remaining := false
		for i, r := range reqs {
			if consumed[i] {
				continue
			}
			remaining = true
			if r.done {
				consumed[i] = true
				return i, r.data, r.err
			}
		}
		if !remaining {
			return -1, nil, nil
		}
		c.cond.Wait()
	}
}

// WaitAll waits for every request, returning the first error observed.
func WaitAll(reqs []*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Split partitions the communicator by color, as MPI_Comm_split does:
// ranks passing the same color form a new communicator, ordered by
// (key, parent rank). Ranks passing a negative color receive nil.
// Split is collective: every member of c must call it.
func (c *Comm) Split(color, key int) (*Comm, error) {
	// Exchange (color, key) among all members.
	payload := encodeInts([]int64{int64(color), int64(key)})
	all, err := c.allgatherInternal(payload, tagSplit)
	if err != nil {
		return nil, fmt.Errorf("comm: split allgather: %w", err)
	}
	type member struct{ color, key, rank int }
	members := make([]member, 0, len(all))
	for r, buf := range all {
		vals, err := decodeInts(buf)
		if err != nil || len(vals) != 2 {
			return nil, fmt.Errorf("comm: split: bad payload from rank %d", r)
		}
		members = append(members, member{int(vals[0]), int(vals[1]), r})
	}

	c.mu.Lock()
	c.splitSeq++
	seq := c.splitSeq
	c.mu.Unlock()

	if color < 0 {
		return nil, nil
	}
	var mine []member
	for _, m := range members {
		if m.color == color {
			mine = append(mine, m)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	group := make([]int, len(mine))
	myIdx := -1
	for i, m := range mine {
		group[i] = c.group[m.rank]
		if m.rank == c.rank {
			myIdx = i
		}
	}
	if myIdx < 0 {
		return nil, fmt.Errorf("comm: split: caller missing from its own color group")
	}
	name := fmt.Sprintf("%s/%d:%d", c.name, seq, color)
	sub := &Comm{
		tr:    c.tr,
		group: group,
		rank:  myIdx,
		ctx:   ctxOf(name),
		name:  name,
	}
	sub.cond = sync.NewCond(&sub.mu)
	return sub, nil
}

// SplitByNode is MPI_Comm_split_type(MPI_COMM_TYPE_SHARED) followed by a
// leader split, the refinement step the paper's SdssRefineComm performs:
// it returns the node-local communicator (all ranks of c on this node)
// and, on each node's lowest rank, the cross-node leader communicator
// (nil on non-leader ranks).
//
// Unlike the general Split, the node layout is already known to every
// rank through the transport, so this split exchanges no messages — it
// must still be called collectively (every rank of c, the same number of
// times) so the derived message contexts line up.
func (c *Comm) SplitByNode() (local, leaders *Comm, err error) {
	c.mu.Lock()
	c.splitSeq++
	seq := c.splitSeq
	c.mu.Unlock()

	myNode := c.Node()
	var localGroup []int  // world ranks on my node, in comm-rank order
	var leaderGroup []int // world ranks of each node's first rank
	seen := make(map[int]bool)
	myLocalIdx, myLeaderIdx := -1, -1
	for r := 0; r < len(c.group); r++ {
		n := c.NodeOf(r)
		if n == myNode {
			if r == c.rank {
				myLocalIdx = len(localGroup)
			}
			localGroup = append(localGroup, c.group[r])
		}
		if !seen[n] {
			seen[n] = true
			if r == c.rank {
				myLeaderIdx = len(leaderGroup)
			}
			leaderGroup = append(leaderGroup, c.group[r])
		}
	}
	if myLocalIdx < 0 {
		return nil, nil, fmt.Errorf("comm: rank %d missing from its own node group", c.rank)
	}
	localName := fmt.Sprintf("%s/%d:node%d", c.name, seq, myNode)
	local = &Comm{tr: c.tr, group: localGroup, rank: myLocalIdx, ctx: ctxOf(localName), name: localName}
	local.cond = sync.NewCond(&local.mu)
	if myLeaderIdx < 0 {
		return local, nil, nil
	}
	leaderName := fmt.Sprintf("%s/%d:leaders", c.name, seq)
	leaders = &Comm{tr: c.tr, group: leaderGroup, rank: myLeaderIdx, ctx: ctxOf(leaderName), name: leaderName}
	leaders.cond = sync.NewCond(&leaders.mu)
	return local, leaders, nil
}

// Close releases the communicator. Only a root communicator built by
// New/NewNamed owns the transport; closing a communicator derived by
// Split, SplitByNode or Dup — or attached with Attach — is a no-op, so
// a job can discard its job-scoped communicators without tearing down
// the fabric its siblings are still using.
func (c *Comm) Close() error {
	if c.owned {
		return c.tr.Close()
	}
	return nil
}
