package comm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// stagedPayloads builds a deterministic payload matrix: what src sends
// to dst, with deliberately skewed and zero-length entries to exercise
// chunk boundaries.
func stagedPayloads(p int, seed int64) [][][]byte {
	rng := rand.New(rand.NewSource(seed))
	m := make([][][]byte, p)
	for src := 0; src < p; src++ {
		m[src] = make([][]byte, p)
		for dst := 0; dst < p; dst++ {
			n := rng.Intn(200)
			if (src+dst)%3 == 0 {
				n = 0 // zero-length pairs must not wedge the schedule
			}
			if src == dst {
				n = rng.Intn(100)
			}
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(rng.Intn(256))
			}
			m[src][dst] = buf
		}
	}
	return m
}

// runStaged executes one StagedAlltoallv over the payload matrix and
// checks every rank reassembles exactly what the plain Alltoall would
// deliver.
func runStaged(t *testing.T, p int, stage int64) {
	t.Helper()
	payloads := stagedPayloads(p, 7*int64(p)+stage)
	runRanks(t, p, nil, func(c *Comm) error {
		me := c.Rank()
		sendBytes := make([]int64, p)
		recvBytes := make([]int64, p)
		for r := 0; r < p; r++ {
			sendBytes[r] = int64(len(payloads[me][r]))
			recvBytes[r] = int64(len(payloads[r][me]))
		}
		got := make([][]byte, p)
		st, err := c.StagedAlltoallv(StagedOptions{
			StageBytes: stage,
			SendBytes:  sendBytes,
			RecvBytes:  recvBytes,
			Fill: func(dst int, off, n int64) ([]byte, error) {
				return payloads[me][dst][off : off+n], nil
			},
			Drain: func(src int, off int64, chunk []byte) error {
				if int64(len(got[src])) != off {
					return fmt.Errorf("rank %d: chunk from %d at offset %d, have %d bytes", me, src, off, len(got[src]))
				}
				got[src] = append(got[src], chunk...)
				return nil
			},
		})
		if err != nil {
			return err
		}
		var want int64
		for r := 0; r < p; r++ {
			want += sendBytes[r]
		}
		if st.BytesStaged != want {
			return fmt.Errorf("rank %d: staged %d bytes, sent %d", me, st.BytesStaged, want)
		}
		if st.Rounds != p {
			return fmt.Errorf("rank %d: %d rounds for %d ranks", me, st.Rounds, p)
		}
		for src := 0; src < p; src++ {
			if !bytes.Equal(got[src], payloads[src][me]) {
				return fmt.Errorf("rank %d: payload from %d differs (%d vs %d bytes)", me, src, len(got[src]), len(payloads[src][me]))
			}
		}
		return nil
	})
}

func TestStagedAlltoallvMatchesAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5, 8} {
		for _, stage := range []int64{0, 1, 7, 64, 1 << 20} {
			t.Run(fmt.Sprintf("p%d_stage%d", p, stage), func(t *testing.T) {
				runStaged(t, p, stage)
			})
		}
	}
}

// TestStagedAlltoallvPooledBuffers drives the exchange the way the sort
// does — Fill encodes into a pooled buffer, FillDone recycles it — and
// checks FillDone fires once per chunk with the buffer Fill produced.
func TestStagedAlltoallvPooledBuffers(t *testing.T) {
	const p, stage = 4, 16
	payloads := stagedPayloads(p, 99)
	var mu sync.Mutex
	fillCalls, doneCalls := 0, 0
	runRanks(t, p, nil, func(c *Comm) error {
		me := c.Rank()
		sendBytes := make([]int64, p)
		recvBytes := make([]int64, p)
		for r := 0; r < p; r++ {
			sendBytes[r] = int64(len(payloads[me][r]))
			recvBytes[r] = int64(len(payloads[r][me]))
		}
		got := make([][]byte, p)
		scratch := make([]byte, 0, stage)
		_, err := c.StagedAlltoallv(StagedOptions{
			StageBytes: stage,
			SendBytes:  sendBytes,
			RecvBytes:  recvBytes,
			Fill: func(dst int, off, n int64) ([]byte, error) {
				mu.Lock()
				fillCalls++
				mu.Unlock()
				scratch = append(scratch[:0], payloads[me][dst][off:off+n]...)
				return scratch, nil
			},
			FillDone: func(dst int, buf []byte) {
				mu.Lock()
				doneCalls++
				mu.Unlock()
			},
			Drain: func(src int, off int64, chunk []byte) error {
				got[src] = append(got[src], chunk...)
				return nil
			},
		})
		if err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			if !bytes.Equal(got[src], payloads[src][me]) {
				return fmt.Errorf("rank %d: payload from %d differs", me, src)
			}
		}
		return nil
	})
	if fillCalls == 0 || fillCalls != doneCalls {
		t.Fatalf("fill/done mismatch: %d fills, %d dones", fillCalls, doneCalls)
	}
}

func TestStagedAlltoallvValidation(t *testing.T) {
	runRanks(t, 1, nil, func(c *Comm) error {
		if _, err := c.StagedAlltoallv(StagedOptions{}); err == nil {
			return fmt.Errorf("missing counts and callbacks accepted")
		}
		if _, err := c.StagedAlltoallv(StagedOptions{
			SendBytes: []int64{4},
			RecvBytes: []int64{8}, // self send != self recv
			Fill:      func(int, int64, int64) ([]byte, error) { return nil, nil },
			Drain:     func(int, int64, []byte) error { return nil },
		}); err == nil {
			return fmt.Errorf("mismatched self counts accepted")
		}
		if _, err := c.StagedAlltoallv(StagedOptions{
			SendBytes: []int64{-1},
			RecvBytes: []int64{-1},
			Fill:      func(int, int64, int64) ([]byte, error) { return nil, nil },
			Drain:     func(int, int64, []byte) error { return nil },
		}); err == nil {
			return fmt.Errorf("negative counts accepted")
		}
		return nil
	})
}
