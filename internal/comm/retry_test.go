package comm

import (
	"errors"
	"testing"
	"time"
)

// fakeTransport counts operations and fails them according to a
// script: failures[i] non-nil means attempt i fails with that error.
type fakeTransport struct {
	rank, size int
	sendCalls  int
	recvCalls  int
	sendErrs   []error
	recvErrs   []error
}

func (f *fakeTransport) Rank() int      { return f.rank }
func (f *fakeTransport) Size() int      { return f.size }
func (f *fakeTransport) Node() int      { return 0 }
func (f *fakeTransport) NodeOf(int) int { return 0 }
func (f *fakeTransport) Close() error   { return nil }

func (f *fakeTransport) Send(dst int, ctx uint64, tag int32, data []byte) error {
	i := f.sendCalls
	f.sendCalls++
	if i < len(f.sendErrs) {
		return f.sendErrs[i]
	}
	return nil
}

func (f *fakeTransport) Recv(src int, ctx uint64, tag int32) ([]byte, error) {
	i := f.recvCalls
	f.recvCalls++
	if i < len(f.recvErrs) {
		return nil, f.recvErrs[i]
	}
	return []byte("ok"), nil
}

func fastPolicy(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond, Jitter: 0.2, Seed: 7}
}

func TestRetryBackoffDeterministicAndCapped(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: 0.5, Seed: 42}
	a, b := NewRetrier(p), NewRetrier(p)
	for i := 0; i < 20; i++ {
		da, db := a.Backoff(i), b.Backoff(i)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		// The cap applies before jitter: delay ≤ MaxDelay·(1+J/2).
		if lim := time.Duration(float64(p.MaxDelay) * (1 + p.Jitter/2)); da > lim {
			t.Fatalf("attempt %d: backoff %v above cap %v", i, da, lim)
		}
		if da <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", i, da)
		}
	}
	// Different seeds should decorrelate.
	p2 := p
	p2.Seed = 43
	c := NewRetrier(p2)
	same := 0
	for i := 0; i < 20; i++ {
		if NewRetrier(p).Backoff(i) == c.Backoff(i) {
			same++
		}
	}
	if same == 20 {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	calls := 0
	err := NewRetrier(fastPolicy(5)).Do(func() error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	}, IsTransient)
	if err != nil {
		t.Fatalf("retriable op failed: %v", err)
	}
	if calls != 3 {
		t.Fatalf("expected 3 attempts, got %d", calls)
	}
}

func TestRetryNonTransientStopsImmediately(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := NewRetrier(fastPolicy(5)).Do(func() error {
		calls++
		return fatal
	}, IsTransient)
	if !errors.Is(err, fatal) {
		t.Fatalf("got %v, want the fatal error", err)
	}
	if calls != 1 {
		t.Fatalf("non-transient error retried %d times", calls)
	}
}

func TestRetryTransportSendExhaustionIsPeerLost(t *testing.T) {
	boom := Transient(errors.New("drop"))
	ft := &fakeTransport{rank: 0, size: 4, sendErrs: []error{boom, boom, boom, boom, boom}}
	tr := WithRetry(ft, fastPolicy(3))
	err := tr.Send(2, 1, 5, []byte("x"))
	if err == nil {
		t.Fatal("exhausted send succeeded")
	}
	rank, ok := PeerLost(err)
	if !ok || rank != 2 {
		t.Fatalf("want ErrPeerLost{Rank:2}, got %v", err)
	}
	if !IsTransient(err) {
		t.Fatalf("peer-lost error should still expose its transient cause: %v", err)
	}
	if ft.sendCalls != 3 {
		t.Fatalf("budget of 3 attempts used %d", ft.sendCalls)
	}
}

func TestRetryTransportSendRecovers(t *testing.T) {
	boom := Transient(errors.New("drop"))
	ft := &fakeTransport{rank: 0, size: 4, sendErrs: []error{boom, boom}}
	tr := WithRetry(ft, fastPolicy(4))
	if err := tr.Send(1, 0, 0, nil); err != nil {
		t.Fatalf("send within budget failed: %v", err)
	}
	if ft.sendCalls != 3 {
		t.Fatalf("expected 3 attempts, got %d", ft.sendCalls)
	}
}

func TestRetryTransportRecvExhaustionIsPeerLost(t *testing.T) {
	boom := Transient(errors.New("rx"))
	ft := &fakeTransport{rank: 1, size: 4, recvErrs: []error{boom, boom}}
	tr := WithRetry(ft, fastPolicy(2))
	_, err := tr.Recv(3, 0, 0)
	rank, ok := PeerLost(err)
	if !ok || rank != 3 {
		t.Fatalf("want ErrPeerLost{Rank:3}, got %v", err)
	}

	// A fresh budget with one failure left recovers and returns data.
	ft2 := &fakeTransport{rank: 1, size: 4, recvErrs: []error{boom}}
	data, err := WithRetry(ft2, fastPolicy(2)).Recv(3, 0, 0)
	if err != nil || string(data) != "ok" {
		t.Fatalf("recv within budget: %q, %v", data, err)
	}
}

func TestRetryNonTransientErrorsPassThroughUnwrapped(t *testing.T) {
	ft := &fakeTransport{rank: 0, size: 2, sendErrs: []error{ErrClosed}}
	err := WithRetry(ft, fastPolicy(4)).Send(1, 0, 0, nil)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if _, ok := PeerLost(err); ok {
		t.Fatal("closed transport must not masquerade as a lost peer")
	}
}

func TestRetryPeerLostErrorShape(t *testing.T) {
	cause := errors.New("underlying")
	e := &ErrPeerLost{Rank: 7, Err: cause}
	if !errors.Is(e, cause) {
		t.Fatal("ErrPeerLost does not unwrap to its cause")
	}
	var target *ErrPeerLost
	if !errors.As(error(e), &target) || target.Rank != 7 {
		t.Fatalf("errors.As failed on %v", e)
	}
	if r, ok := PeerLost(errors.Join(errors.New("other"), e)); !ok || r != 7 {
		t.Fatal("PeerLost missed a joined ErrPeerLost")
	}
}
