package comm

import (
	"encoding/binary"
	"fmt"
)

// Barrier blocks until every rank of the communicator has entered it.
// It uses the dissemination algorithm: ceil(log2(p)) rounds of
// shifted send/recv pairs, so it is O(log p) over any transport.
func (c *Comm) Barrier() error {
	p := len(c.group)
	if p == 1 {
		return nil
	}
	for k, round := 1, 0; k < p; k, round = k*2, round+1 {
		dst := (c.rank + k) % p
		src := (c.rank - k + p) % p
		tag := tagBarrier - int32(round)
		if err := c.sendInternal(dst, tag, nil); err != nil {
			return fmt.Errorf("comm: barrier send: %w", err)
		}
		if _, err := c.recvInternal(src, tag); err != nil {
			return fmt.Errorf("comm: barrier recv: %w", err)
		}
	}
	return nil
}

// Bcast distributes root's data to every rank using a binomial tree and
// returns it on all ranks. Non-root callers pass nil.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	p := len(c.group)
	if root < 0 || root >= p {
		return nil, fmt.Errorf("comm: bcast root %d out of range", root)
	}
	if p == 1 {
		return data, nil
	}
	// Rotate ranks so the root is virtual rank 0.
	vr := (c.rank - root + p) % p
	if vr != 0 {
		// Receive from parent: clear the lowest set bit of vr.
		parent := (vr&(vr-1) + root) % p
		var err error
		data, err = c.recvInternal(parent, tagBcast)
		if err != nil {
			return nil, fmt.Errorf("comm: bcast recv: %w", err)
		}
	}
	// Forward to children: vr + 2^k for each k above vr's lowest bits.
	for mask := 1; mask < p; mask *= 2 {
		if vr&mask != 0 {
			break
		}
		childVr := vr + mask
		if childVr >= p {
			break
		}
		child := (childVr + root) % p
		if err := c.sendInternal(child, tagBcast, data); err != nil {
			return nil, fmt.Errorf("comm: bcast send: %w", err)
		}
	}
	return data, nil
}

// Gather collects each rank's data at root. On root it returns one
// payload per rank indexed by communicator rank; elsewhere it returns
// nil. Payload sizes may differ per rank (gatherv semantics).
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	p := len(c.group)
	if root < 0 || root >= p {
		return nil, fmt.Errorf("comm: gather root %d out of range", root)
	}
	if c.rank != root {
		if err := c.sendInternal(root, tagGather, data); err != nil {
			return nil, fmt.Errorf("comm: gather send: %w", err)
		}
		return nil, nil
	}
	out := make([][]byte, p)
	out[root] = data
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		buf, err := c.recvInternal(r, tagGather)
		if err != nil {
			return nil, fmt.Errorf("comm: gather recv from %d: %w", r, err)
		}
		out[r] = buf
	}
	return out, nil
}

// Allgather collects every rank's data on every rank (allgatherv:
// payload sizes may differ). The result is indexed by communicator rank.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.rank == 0 {
		packed = packFrames(parts)
	}
	packed, err = c.Bcast(0, packed)
	if err != nil {
		return nil, err
	}
	return unpackFrames(packed)
}

// allgatherInternal is Allgather on a reserved tag, used inside Split so
// it cannot interfere with user traffic. It uses a flat exchange.
func (c *Comm) allgatherInternal(data []byte, tag int32) ([][]byte, error) {
	p := len(c.group)
	out := make([][]byte, p)
	out[c.rank] = data
	for i := 1; i < p; i++ {
		dst := (c.rank + i) % p
		if err := c.sendInternal(dst, tag, data); err != nil {
			return nil, err
		}
	}
	for i := 1; i < p; i++ {
		src := (c.rank - i + p) % p
		buf, err := c.recvInternal(src, tag)
		if err != nil {
			return nil, err
		}
		out[src] = buf
	}
	return out, nil
}

// Alltoall performs a personalized all-to-all exchange: parts[i] is sent
// to rank i, and the result's element i is the payload received from
// rank i. Payload sizes may differ (alltoallv semantics: in MPI terms
// this is MPI_Alltoallv with the counts carried by the messages
// themselves). Entry i == Rank() is copied locally without touching the
// transport.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	p := len(c.group)
	if len(parts) != p {
		return nil, fmt.Errorf("comm: alltoall needs %d parts, got %d", p, len(parts))
	}
	out := make([][]byte, p)
	out[c.rank] = append([]byte(nil), parts[c.rank]...)
	for i := 1; i < p; i++ {
		dst := (c.rank + i) % p
		if err := c.sendInternal(dst, tagAlltoall, parts[dst]); err != nil {
			return nil, fmt.Errorf("comm: alltoall send to %d: %w", dst, err)
		}
	}
	for i := 1; i < p; i++ {
		src := (c.rank - i + p) % p
		buf, err := c.recvInternal(src, tagAlltoall)
		if err != nil {
			return nil, fmt.Errorf("comm: alltoall recv from %d: %w", src, err)
		}
		out[src] = buf
	}
	return out, nil
}

// AllgatherInt64 exchanges one int64 per rank and returns the vector on
// every rank, a convenience for the count exchanges in the stable
// partition (Fig 2 line 12 of the paper).
func (c *Comm) AllgatherInt64(v int64) ([]int64, error) {
	parts, err := c.Allgather(encodeInts([]int64{v}))
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(parts))
	for r, buf := range parts {
		vals, err := decodeInts(buf)
		if err != nil || len(vals) != 1 {
			return nil, fmt.Errorf("comm: allgather int64: bad payload from rank %d", r)
		}
		out[r] = vals[0]
	}
	return out, nil
}

// AllreduceInt64 folds one value per rank with op (which must be
// associative and commutative) and returns the result on every rank.
func (c *Comm) AllreduceInt64(v int64, op func(a, b int64) int64) (int64, error) {
	vals, err := c.AllgatherInt64(v)
	if err != nil {
		return 0, err
	}
	acc := vals[0]
	for _, x := range vals[1:] {
		acc = op(acc, x)
	}
	return acc, nil
}

// packFrames concatenates variable-size payloads with u32 length
// prefixes so they survive a single Bcast.
func packFrames(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	buf := make([]byte, 0, total)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	buf = append(buf, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	return buf
}

func unpackFrames(buf []byte) ([][]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("comm: short frame pack")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("comm: truncated frame header")
		}
		l := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < l {
			return nil, fmt.Errorf("comm: truncated frame body")
		}
		out = append(out, buf[:l:l])
		buf = buf[l:]
	}
	return out, nil
}

func encodeInts(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return buf
}

func decodeInts(buf []byte) ([]int64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("comm: int payload length %d not a multiple of 8", len(buf))
	}
	out := make([]int64, len(buf)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// EncodeInt64s exposes the int64-vector wire format for algorithm
// packages that exchange counts and displacements.
func EncodeInt64s(vals []int64) []byte { return encodeInts(vals) }

// DecodeInt64s decodes a vector produced by EncodeInt64s.
func DecodeInt64s(buf []byte) ([]int64, error) { return decodeInts(buf) }
