package comm

import (
	"fmt"
	"time"
)

// Clock-offset estimation over the fabric, so per-rank wall-clock
// timestamps (trace.Event.UnixUS) can be projected onto one global
// timeline. The protocol is the classic NTP ping-pong: rank 0 sends a
// probe, the peer answers with its own clock reading, and rank 0
// timestamps both ends of the round trip. Under the symmetric-delay
// assumption the peer's clock at the midpoint of the round trip
// should read (t0+t1)/2 on rank 0's clock, so
//
//	offset = t_peer − (t0+t1)/2
//
// is how far the peer's clock runs ahead of rank 0's. Each peer is
// probed several times and the sample with the smallest round trip
// wins — short trips bound the asymmetry error by rtt/2, typically
// tens of microseconds on a LAN against the millisecond-scale phases
// the spans measure. The error bound travels with the estimate as the
// RTT, so a reader can judge alignment quality.
//
// tagClock is reserved below every other internal band; clock frames
// can never match user or collective receives.
const tagClock int32 = -4096

// clockRounds is the default probe count per peer.
const clockRounds = 8

// ClockSync is the world's agreed clock geometry, identical on every
// rank after SyncClocks: Offsets[r] is rank r's clock minus rank 0's
// in microseconds (Offsets[0] == 0), RTTs[r] the round-trip time of
// the winning probe, an upper bound on 2× the estimate's error.
type ClockSync struct {
	Offsets []int64
	RTTs    []int64
}

// Offset returns the offset for rank r, 0 when out of range (a
// degenerate sync or a rank that never measured).
func (cs ClockSync) Offset(r int) int64 {
	if r < 0 || r >= len(cs.Offsets) {
		return 0
	}
	return cs.Offsets[r]
}

// SyncClocks measures every rank's clock offset against rank 0 and
// broadcasts the result, so all ranks return the same ClockSync. It
// is collective — every rank of c must call it, at world formation
// and again after a Reform (a shrunken world renumbers ranks, and its
// rank 0 may be a different host). rounds <= 0 uses the default.
func (c *Comm) SyncClocks(rounds int) (ClockSync, error) {
	if rounds <= 0 {
		rounds = clockRounds
	}
	p := c.Size()
	cs := ClockSync{Offsets: make([]int64, p), RTTs: make([]int64, p)}
	if p == 1 {
		return cs, nil
	}
	if c.Rank() == 0 {
		for r := 1; r < p; r++ {
			var bestOff, bestRTT int64
			for i := 0; i < rounds; i++ {
				t0 := time.Now()
				if err := c.sendInternal(r, tagClock, nil); err != nil {
					return ClockSync{}, fmt.Errorf("comm: clock probe to rank %d: %w", r, err)
				}
				buf, err := c.recvInternal(r, tagClock)
				if err != nil {
					return ClockSync{}, fmt.Errorf("comm: clock reply from rank %d: %w", r, err)
				}
				t1 := time.Now()
				vals, err := decodeInts(buf)
				if err != nil || len(vals) != 1 {
					return ClockSync{}, fmt.Errorf("comm: clock reply from rank %d: bad payload", r)
				}
				rtt := t1.Sub(t0).Microseconds()
				mid := (t0.UnixMicro() + t1.UnixMicro()) / 2
				if off := vals[0] - mid; i == 0 || rtt < bestRTT {
					bestOff, bestRTT = off, rtt
				}
			}
			cs.Offsets[r], cs.RTTs[r] = bestOff, bestRTT
		}
	} else {
		for i := 0; i < rounds; i++ {
			if _, err := c.recvInternal(0, tagClock); err != nil {
				return ClockSync{}, fmt.Errorf("comm: clock probe: %w", err)
			}
			if err := c.sendInternal(0, tagClock, encodeInts([]int64{time.Now().UnixMicro()})); err != nil {
				return ClockSync{}, fmt.Errorf("comm: clock reply: %w", err)
			}
		}
	}
	// Everyone learns the full geometry; the offsets ride the ordinary
	// broadcast (its own tag band, so no interference with the probes).
	var payload []byte
	if c.Rank() == 0 {
		payload = encodeInts(append(append([]int64{}, cs.Offsets...), cs.RTTs...))
	}
	buf, err := c.Bcast(0, payload)
	if err != nil {
		return ClockSync{}, fmt.Errorf("comm: clock bcast: %w", err)
	}
	vals, err := decodeInts(buf)
	if err != nil || len(vals) != 2*p {
		return ClockSync{}, fmt.Errorf("comm: clock bcast: bad payload")
	}
	copy(cs.Offsets, vals[:p])
	copy(cs.RTTs, vals[p:])
	return cs, nil
}
