// Package partition implements the paper's skew-aware data partition
// (SdssPartition, Fig. 2), the replicated-pivot scan (SdssReplicated,
// Fig. 3), and the local-pivot-accelerated boundary search (§2.5.1).
// The functions here are pure — the one collective the stable version
// needs (an all-gather of duplicate counts) is injected by the caller —
// so the same code drives the distributed sort, the shared-memory
// parallel merge, and the unit tests.
package partition

// Locator finds pivot boundaries inside one rank's sorted data. The
// three implementations are the three methods Fig. 6b compares:
// sequential full scan, plain binary search, and the paper's local-pivot
// accelerated search.
type Locator[T any] interface {
	// UpperBound returns the smallest index i such that v < data[i]
	// (len(data) if none), i.e. one past the last element <= v.
	UpperBound(data []T, v T) int
	// LowerBound returns the smallest index i such that data[i] >= v.
	LowerBound(data []T, v T) int
}

// UpperBound is the classic binary search: first index whose element
// compares greater than v.
func UpperBound[T any](data []T, v T, cmp func(a, b T) int) int {
	lo, hi := 0, len(data)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmp(data[mid], v) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LowerBound is the classic binary search: first index whose element
// compares greater than or equal to v.
func LowerBound[T any](data []T, v T, cmp func(a, b T) int) int {
	lo, hi := 0, len(data)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmp(data[mid], v) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Binary is the plain binary-search locator.
type Binary[T any] struct {
	Cmp func(a, b T) int
}

func (b Binary[T]) UpperBound(data []T, v T) int { return UpperBound(data, v, b.Cmp) }
func (b Binary[T]) LowerBound(data []T, v T) int { return LowerBound(data, v, b.Cmp) }

// Stripe is the paper's local-pivot locator: the p-1 local pivots taken
// at stride ⌊n/p⌋ during sampling index the sorted data, so a boundary
// search first ranks the value among the local pivots (O(log p)) and
// then searches only the ⌊n/p⌋-wide stripe between two adjacent local
// pivots (O(log(n/p))) — the shift space reduction of §2.5.1.
type Stripe[T any] struct {
	Pivots []T // p-1 local pivots, sorted
	Stride int // ⌊n/p⌋, the sampling stride the pivots were taken at
	Cmp    func(a, b T) int
}

// NewStripe builds the locator from sorted data by regular sampling
// with p-1 pivots, mirroring line 8 of the SDS-Sort listing.
func NewStripe[T any](data []T, p int, cmp func(a, b T) int) Stripe[T] {
	stride := len(data) / p
	if stride < 1 {
		stride = 1
	}
	var pivots []T
	for i := 1; i < p && i*stride < len(data); i++ {
		pivots = append(pivots, data[i*stride])
	}
	return Stripe[T]{Pivots: pivots, Stride: stride, Cmp: cmp}
}

func (s Stripe[T]) stripe(data []T, v T, upper bool) (lo, hi int) {
	var pi int
	if upper {
		pi = UpperBound(s.Pivots, v, s.Cmp)
	} else {
		pi = LowerBound(s.Pivots, v, s.Cmp)
	}
	// Local pivot j sits at data[(j+1)*stride]; a value ranking pi
	// among pivots lies in data[pi*stride : (pi+1)*stride] inclusive
	// of the pivot positions themselves.
	lo = pi * s.Stride
	hi = (pi + 1) * s.Stride
	if pi == len(s.Pivots) {
		// Past the last pivot: the stripe runs to the end of the
		// data (the tail stripe absorbs the ⌊n/p⌋ remainder).
		hi = len(data)
	}
	if lo > len(data) {
		lo = len(data)
	}
	if hi > len(data) {
		hi = len(data)
	}
	return lo, hi
}

func (s Stripe[T]) UpperBound(data []T, v T) int {
	lo, hi := s.stripe(data, v, true)
	return lo + UpperBound(data[lo:hi], v, s.Cmp)
}

func (s Stripe[T]) LowerBound(data []T, v T) int {
	lo, hi := s.stripe(data, v, false)
	return lo + LowerBound(data[lo:hi], v, s.Cmp)
}

// Scan is the O(n) sequential-scan locator, the baseline of Fig. 6b.
type Scan[T any] struct {
	Cmp func(a, b T) int
}

func (s Scan[T]) UpperBound(data []T, v T) int {
	for i, x := range data {
		if s.Cmp(x, v) > 0 {
			return i
		}
	}
	return len(data)
}

func (s Scan[T]) LowerBound(data []T, v T) int {
	for i, x := range data {
		if s.Cmp(x, v) >= 0 {
			return i
		}
	}
	return len(data)
}
