package partition

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestBoundsAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 100; trial++ {
		data := sortedRandom(rng, rng.Intn(300), 20)
		for v := -1; v <= 20; v++ {
			wantUB, _ := slices.BinarySearch(data, v+1)
			if got := UpperBound(data, v, cmpInt); got != wantUB {
				t.Fatalf("UpperBound(%v, %d) = %d, want %d", data, v, got, wantUB)
			}
			wantLB, _ := slices.BinarySearch(data, v)
			if got := LowerBound(data, v, cmpInt); got != wantLB {
				t.Fatalf("LowerBound(%v, %d) = %d, want %d", data, v, got, wantLB)
			}
		}
	}
}

func TestLocatorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 50 + rng.Intn(5000)
		data := sortedRandom(rng, n, 100)
		for _, p := range []int{2, 4, 7, 16} {
			stripe := NewStripe(data, p, cmpInt)
			scan := Scan[int]{cmpInt}
			bin := Binary[int]{cmpInt}
			for v := -1; v <= 100; v += 3 {
				ub := bin.UpperBound(data, v)
				if got := stripe.UpperBound(data, v); got != ub {
					t.Fatalf("n=%d p=%d v=%d: stripe UB %d want %d", n, p, v, got, ub)
				}
				if got := scan.UpperBound(data, v); got != ub {
					t.Fatalf("n=%d p=%d v=%d: scan UB %d want %d", n, p, v, got, ub)
				}
				lb := bin.LowerBound(data, v)
				if got := stripe.LowerBound(data, v); got != lb {
					t.Fatalf("n=%d p=%d v=%d: stripe LB %d want %d", n, p, v, got, lb)
				}
				if got := scan.LowerBound(data, v); got != lb {
					t.Fatalf("n=%d p=%d v=%d: scan LB %d want %d", n, p, v, got, lb)
				}
			}
		}
	}
}

func TestStripeOnTinyData(t *testing.T) {
	// Fewer records than processes: the stripe locator must degrade
	// gracefully.
	data := []int{5}
	stripe := NewStripe(data, 8, cmpInt)
	if got := stripe.UpperBound(data, 5); got != 1 {
		t.Fatalf("UB=%d", got)
	}
	if got := stripe.LowerBound(data, 5); got != 0 {
		t.Fatalf("LB=%d", got)
	}
	var empty []int
	stripeE := NewStripe(empty, 4, cmpInt)
	if got := stripeE.UpperBound(empty, 1); got != 0 {
		t.Fatalf("empty UB=%d", got)
	}
}

func TestStripeDuplicateHeavy(t *testing.T) {
	data := make([]int, 1000)
	for i := 400; i < 1000; i++ {
		data[i] = 3
	}
	slices.Sort(data)
	stripe := NewStripe(data, 8, cmpInt)
	if got, want := stripe.LowerBound(data, 3), 400; got != want {
		t.Fatalf("LB=%d want %d", got, want)
	}
	if got, want := stripe.UpperBound(data, 3), 1000; got != want {
		t.Fatalf("UB=%d want %d", got, want)
	}
}

func TestStripeProperty(t *testing.T) {
	f := func(raw []uint8, v uint8, pRaw uint8) bool {
		data := make([]int, len(raw))
		for i, x := range raw {
			data[i] = int(x) % 32
		}
		slices.Sort(data)
		p := int(pRaw)%15 + 2
		stripe := NewStripe(data, p, cmpInt)
		bin := Binary[int]{cmpInt}
		val := int(v) % 32
		return stripe.UpperBound(data, val) == bin.UpperBound(data, val) &&
			stripe.LowerBound(data, val) == bin.LowerBound(data, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
