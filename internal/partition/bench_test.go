package partition

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchData(n int, dupFrac float64) ([]int, []int) {
	rng := rand.New(rand.NewSource(1))
	data := make([]int, n)
	for i := range data {
		if rng.Float64() < dupFrac {
			data[i] = 500
		} else {
			data[i] = rng.Intn(1000)
		}
	}
	// Sort via simple comparison (test-only path).
	quickSortInts(data)
	return data, data
}

func quickSortInts(a []int) {
	if len(a) < 2 {
		return
	}
	pivot := a[len(a)/2]
	lo, hi := 0, len(a)-1
	for lo <= hi {
		for a[lo] < pivot {
			lo++
		}
		for a[hi] > pivot {
			hi--
		}
		if lo <= hi {
			a[lo], a[hi] = a[hi], a[lo]
			lo++
			hi--
		}
	}
	quickSortInts(a[:hi+1])
	quickSortInts(a[lo:])
}

func samplePivots(data []int, p int) []int {
	stride := len(data) / p
	var pg []int
	for i := 1; i < p; i++ {
		pg = append(pg, data[i*stride])
	}
	return pg
}

func BenchmarkFastPartition(b *testing.B) {
	for _, p := range []int{16, 128} {
		for _, dup := range []float64{0, 0.5} {
			b.Run(fmt.Sprintf("p=%d/dup=%.0f%%", p, dup*100), func(b *testing.B) {
				data, _ := benchData(1<<18, dup)
				pg := samplePivots(data, p)
				loc := Binary[int]{Cmp: cmpInt}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					Fast(data, pg, loc, cmpInt)
				}
			})
		}
	}
}

func BenchmarkLocatorUpperBound(b *testing.B) {
	data, _ := benchData(1<<18, 0)
	locs := map[string]Locator[int]{
		"binary": Binary[int]{Cmp: cmpInt},
		"stripe": NewStripe(data, 64, cmpInt),
	}
	for name, loc := range locs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				loc.UpperBound(data, i%1000)
			}
		})
	}
}

func BenchmarkStablePartition(b *testing.B) {
	const p = 32
	data, _ := benchData(1<<18, 0.5)
	pg := samplePivots(data, p)
	loc := Binary[int]{Cmp: cmpInt}
	runs := Runs(pg, cmpInt)
	counts := make([][]int64, len(runs))
	local := LocalDupCounts(data, pg, runs, loc)
	for k := range counts {
		counts[k] = make([]int64, p)
		for r := 0; r < p; r++ {
			counts[k][r] = local[k]
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Stable(data, pg, loc, cmpInt, 3, counts); err != nil {
			b.Fatal(err)
		}
	}
}
