package partition_test

import (
	"fmt"

	"sdssort/internal/partition"
)

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func ExampleFast() {
	// Eight sorted records, three global pivots — two of which are the
	// duplicated value 5. The fast skew-aware partition splits the 5s
	// evenly between the two processes sharing the pivot.
	data := []int{1, 2, 5, 5, 5, 5, 8, 9}
	pg := []int{5, 5, 7}
	bounds := partition.Fast(data, pg, partition.Binary[int]{Cmp: cmpInt}, cmpInt)
	fmt.Println(bounds)
	for j := 0; j < len(bounds)-1; j++ {
		fmt.Printf("P%d gets %v\n", j, data[bounds[j]:bounds[j+1]])
	}
	// Output:
	// [0 4 6 6 8]
	// P0 gets [1 2 5 5]
	// P1 gets [5 5]
	// P2 gets []
	// P3 gets [8 9]
}

func ExampleRuns() {
	pg := []int{1, 5, 5, 5, 9}
	for _, r := range partition.Runs(pg, cmpInt) {
		fmt.Printf("pivots %d..%d share value %d\n", r.Start, r.Start+r.Len-1, pg[r.Start])
	}
	// Output: pivots 1..3 share value 5
}

func ExampleReplicated() {
	pg := []int{1, 5, 5, 5, 9}
	fr, rs, rr, ppvIdx := partition.Replicated(pg, 2, cmpInt)
	fmt.Println(fr, rs, rr, ppvIdx)
	// Output: true 3 1 0
}
