package partition

import "fmt"

// PivotRun is a maximal run of equal global pivots: pg[Start:Start+Len]
// all compare equal. Runs with Len >= 2 are what SdssReplicated (Fig. 3)
// detects; the rs processes owning those pivots share the duplicated
// value's records.
type PivotRun struct {
	Start, Len int
}

// Runs scans the sorted global pivot vector once and returns every
// maximal run of length >= 2. All ranks hold identical global pivots,
// so every rank computes the identical run list — this is what lets the
// stable version batch its count exchange into one collective.
func Runs[T any](pg []T, cmp func(a, b T) int) []PivotRun {
	var runs []PivotRun
	i := 0
	for i < len(pg) {
		j := i + 1
		for j < len(pg) && cmp(pg[j], pg[i]) == 0 {
			j++
		}
		if j-i >= 2 {
			runs = append(runs, PivotRun{Start: i, Len: j - i})
		}
		i = j
	}
	return runs
}

// LocalDupCounts returns, for each replicated-pivot run, the number of
// local records equal to that run's pivot value — the cr of Fig. 2 line
// 11. The caller all-gathers these (one collective for all runs) before
// calling Stable.
func LocalDupCounts[T any](data []T, pg []T, runs []PivotRun, loc Locator[T]) []int64 {
	counts := make([]int64, len(runs))
	for k, r := range runs {
		v := pg[r.Start]
		counts[k] = int64(loc.UpperBound(data, v) - loc.LowerBound(data, v))
	}
	return counts
}

// Fast computes the send boundaries of the fast (non-stable) skew-aware
// partition over one rank's sorted data: boundaries[j] is the start of
// the records destined for process j, boundaries[p] == len(data).
// Records equal to a pivot value shared by rs processes are split evenly
// among those rs processes (Fig. 2 line 9 / Fig. 4 left), which is what
// caps every process's load at O(4N/p) regardless of skew (Theorem 1).
//
// Note on the listing: Fig. 2 computes the duplicate span's start as
// upper_bound(ppv), the previous distinct pivot. When values strictly
// between ppv and the duplicated pivot exist, that span also contains
// non-duplicates, and splitting them across processes would break global
// sortedness. We therefore take the span as [lower_bound(v),
// upper_bound(v)) — exactly the duplicates — and leave the in-between
// values with the run's first process, which is the behaviour the
// paper's Fig. 4 illustrates. The two readings coincide whenever the
// span holds only duplicates.
func Fast[T any](data []T, pg []T, loc Locator[T], cmp func(a, b T) int) []int {
	p := len(pg) + 1
	bounds := make([]int, p+1)
	bounds[p] = len(data)
	i := 0
	for i < len(pg) {
		j := i + 1
		for j < len(pg) && cmp(pg[j], pg[i]) == 0 {
			j++
		}
		rs := j - i
		if rs == 1 {
			bounds[i+1] = loc.UpperBound(data, pg[i])
		} else {
			v := pg[i]
			lbv := loc.LowerBound(data, v)
			pd := loc.UpperBound(data, v)
			span := pd - lbv
			for k := 1; k <= rs; k++ {
				if i+k <= len(pg) {
					bounds[i+k] = lbv + span*k/rs
				}
			}
		}
		i = j
	}
	return bounds
}

// Stable computes the send boundaries of the stable skew-aware
// partition. rank is this process's rank; dupCounts[k] holds every
// rank's duplicate count for replicated run k (as returned by
// LocalDupCounts, all-gathered — runs must match Runs(pg)).
//
// All duplicates, ordered rank-by-rank, form one contiguous "replicated
// value space"; it is cut into rs equal groups, and the g-th process of
// the run gathers group g (Fig. 2 lines 11-25, Fig. 4 right). Because
// group number is monotone in (rank, local position), rank order — and
// therefore stability — is preserved without secondary sorting keys.
func Stable[T any](data []T, pg []T, loc Locator[T], cmp func(a, b T) int, rank int, dupCounts [][]int64) ([]int, error) {
	p := len(pg) + 1
	bounds := make([]int, p+1)
	bounds[p] = len(data)
	runIdx := 0
	i := 0
	for i < len(pg) {
		j := i + 1
		for j < len(pg) && cmp(pg[j], pg[i]) == 0 {
			j++
		}
		rs := j - i
		if rs == 1 {
			bounds[i+1] = loc.UpperBound(data, pg[i])
			i = j
			continue
		}
		if runIdx >= len(dupCounts) {
			return nil, fmt.Errorf("partition: %d replicated runs but only %d count vectors", runIdx+1, len(dupCounts))
		}
		cv := dupCounts[runIdx]
		runIdx++
		if rank >= len(cv) {
			return nil, fmt.Errorf("partition: rank %d outside count vector of length %d", rank, len(cv))
		}

		v := pg[i]
		lbv := loc.LowerBound(data, v)
		pd := loc.UpperBound(data, v)
		cr := int64(pd - lbv)
		if want := cv[rank]; want != cr {
			return nil, fmt.Errorf("partition: local duplicate count %d disagrees with gathered count %d", cr, want)
		}

		// Global positions of my duplicates: [sb, sb+cr).
		var sb, total int64
		for r, c := range cv {
			if r < rank {
				sb += c
			}
			total += c
		}
		// Group size: ceiling so rs groups always cover the space.
		sa := (total + int64(rs) - 1) / int64(rs)
		if sa == 0 {
			sa = 1
		}
		for k := 1; k <= rs; k++ {
			if i+k > len(pg) {
				break
			}
			if k == rs {
				bounds[i+k] = pd
				break
			}
			// End of group k-1 in global positions, clipped to my
			// local window.
			local := int64(k)*sa - sb
			if local < 0 {
				local = 0
			}
			if local > cr {
				local = cr
			}
			bounds[i+k] = lbv + int(local)
		}
		i = j
	}
	if runIdx != len(dupCounts) {
		return nil, fmt.Errorf("partition: %d replicated runs but %d count vectors", runIdx, len(dupCounts))
	}
	return bounds, nil
}

// Counts converts boundaries into per-destination record counts.
func Counts(bounds []int) []int {
	counts := make([]int, len(bounds)-1)
	for i := range counts {
		counts[i] = bounds[i+1] - bounds[i]
	}
	return counts
}

// Validate checks that bounds is a monotone partition of n records.
func Validate(bounds []int, n int) error {
	if len(bounds) < 2 {
		return fmt.Errorf("partition: need at least 2 boundaries, got %d", len(bounds))
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != n {
		return fmt.Errorf("partition: bounds [%d, %d] do not cover [0, %d]", bounds[0], bounds[len(bounds)-1], n)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			return fmt.Errorf("partition: bounds[%d]=%d < bounds[%d]=%d", i, bounds[i], i-1, bounds[i-1])
		}
	}
	return nil
}
