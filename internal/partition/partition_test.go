package partition

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func sortedRandom(rng *rand.Rand, n, universe int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(universe)
	}
	slices.Sort(out)
	return out
}

func TestRuns(t *testing.T) {
	cases := []struct {
		pg   []int
		want []PivotRun
	}{
		{nil, nil},
		{[]int{1, 2, 3}, nil},
		{[]int{1, 1, 2}, []PivotRun{{0, 2}}},
		{[]int{1, 2, 2, 2, 3, 3}, []PivotRun{{1, 3}, {4, 2}}},
		{[]int{5, 5, 5, 5}, []PivotRun{{0, 4}}},
	}
	for _, c := range cases {
		got := Runs(c.pg, cmpInt)
		if !slices.Equal(got, c.want) {
			t.Errorf("Runs(%v) = %v, want %v", c.pg, got, c.want)
		}
	}
}

func TestReplicatedMatchesRuns(t *testing.T) {
	// The faithful Fig. 3 port and the batched run scan must agree.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		pg := sortedRandom(rng, rng.Intn(12), 4)
		runs := Runs(pg, cmpInt)
		inRun := make(map[int]PivotRun)
		for _, r := range runs {
			for i := r.Start; i < r.Start+r.Len; i++ {
				inRun[i] = r
			}
		}
		for i := range pg {
			fr, rs, rr, ppvIdx := Replicated(pg, i, cmpInt)
			r, dup := inRun[i]
			if fr != dup {
				t.Fatalf("pg=%v i=%d: fr=%v dup=%v", pg, i, fr, dup)
			}
			if !dup {
				continue
			}
			if rs != r.Len {
				t.Fatalf("pg=%v i=%d: rs=%d want %d", pg, i, rs, r.Len)
			}
			if rr != i-r.Start {
				t.Fatalf("pg=%v i=%d: rr=%d want %d", pg, i, rr, i-r.Start)
			}
			if ppvIdx != r.Start-1 {
				t.Fatalf("pg=%v i=%d: ppvIdx=%d want %d", pg, i, ppvIdx, r.Start-1)
			}
		}
	}
}

func TestFastNoDuplicatePivots(t *testing.T) {
	data := []int{1, 2, 3, 4, 5, 6, 7, 8}
	pg := []int{2, 4, 6}
	bounds := Fast(data, pg, Binary[int]{cmpInt}, cmpInt)
	want := []int{0, 2, 4, 6, 8}
	if !slices.Equal(bounds, want) {
		t.Fatalf("got %v want %v", bounds, want)
	}
}

func TestFastSplitsDuplicates(t *testing.T) {
	// 12 copies of 5 shared by pivots 1 and 2 (both == 5): processes
	// 1 and 2 each get half the duplicate span.
	data := []int{1, 2, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 9, 9}
	pg := []int{5, 5, 8}
	bounds := Fast(data, pg, Binary[int]{cmpInt}, cmpInt)
	if err := Validate(bounds, len(data)); err != nil {
		t.Fatal(err)
	}
	// Duplicate span is [2, 14): split at 2+6=8 and 14.
	want := []int{0, 8, 14, 14, 16}
	if !slices.Equal(bounds, want) {
		t.Fatalf("got %v want %v", bounds, want)
	}
}

func TestFastRunAtPivotZero(t *testing.T) {
	// Duplicated pivot run starting at index 0: values below the
	// duplicate value stay with process 0.
	data := []int{0, 1, 3, 3, 3, 3, 7}
	pg := []int{3, 3, 5}
	bounds := Fast(data, pg, Binary[int]{cmpInt}, cmpInt)
	if err := Validate(bounds, len(data)); err != nil {
		t.Fatal(err)
	}
	// dup span [2,6): split at 2+2=4 (process 0 also keeps 0,1) and 6.
	// Pivot 5 is a singleton: process 2's range (3,5] holds nothing,
	// so its boundary stays at 6 and process 3 takes the 7.
	want := []int{0, 4, 6, 6, 7}
	if !slices.Equal(bounds, want) {
		t.Fatalf("got %v want %v", bounds, want)
	}
}

func TestFastIntermediateValuesStayWithFirstProcess(t *testing.T) {
	// Values strictly between the previous pivot (2) and the
	// duplicated pivot (5) must all go to the run's first process, or
	// global sortedness breaks.
	data := []int{1, 3, 4, 5, 5, 5, 5, 9}
	pg := []int{2, 5, 5}
	bounds := Fast(data, pg, Binary[int]{cmpInt}, cmpInt)
	if err := Validate(bounds, len(data)); err != nil {
		t.Fatal(err)
	}
	// P0: <=2 -> [0,1). P1: 3,4 plus half of the four 5s -> [1,5).
	// P2: remaining 5s -> [5,7). P3: rest -> [7,8).
	want := []int{0, 1, 5, 7, 8}
	if !slices.Equal(bounds, want) {
		t.Fatalf("got %v want %v", bounds, want)
	}
}

func TestFastAllPivotsEqual(t *testing.T) {
	data := []int{7, 7, 7, 7, 7, 7, 7, 7}
	pg := []int{7, 7, 7}
	bounds := Fast(data, pg, Binary[int]{cmpInt}, cmpInt)
	if err := Validate(bounds, len(data)); err != nil {
		t.Fatal(err)
	}
	// 8 records, 4 pivot-sharers (3 pivots + the tail) — the three
	// pivot processes split [0,8) at 8*k/3... rs=3 so splits at
	// floor(8/3)=2, floor(16/3)=5, 8.
	want := []int{0, 2, 5, 8, 8}
	if !slices.Equal(bounds, want) {
		t.Fatalf("got %v want %v", bounds, want)
	}
}

func TestFastValueAbsentLocally(t *testing.T) {
	// The duplicated pivot value has no local records at all.
	data := []int{1, 2, 8, 9}
	pg := []int{5, 5, 7}
	bounds := Fast(data, pg, Binary[int]{cmpInt}, cmpInt)
	if err := Validate(bounds, len(data)); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 2, 2, 4}
	if !slices.Equal(bounds, want) {
		t.Fatalf("got %v want %v", bounds, want)
	}
}

// fastLoadsGlobal runs the fast partition on every rank's data and
// returns the per-destination totals.
func fastLoadsGlobal(t *testing.T, ranks [][]int, pg []int) []int {
	t.Helper()
	p := len(pg) + 1
	loads := make([]int, p)
	for _, data := range ranks {
		bounds := Fast(data, pg, Binary[int]{cmpInt}, cmpInt)
		if err := Validate(bounds, len(data)); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < p; j++ {
			loads[j] += bounds[j+1] - bounds[j]
		}
	}
	return loads
}

func TestFastLoadBoundTheorem1(t *testing.T) {
	// Theorem 1: with skew-aware partitioning the max per-process load
	// is O(4N/p) even when the data is one giant duplicate cluster.
	rng := rand.New(rand.NewSource(2))
	const p, perRank = 8, 4000
	workloads := map[string]func() int{
		"allEqual": func() int { return 7 },
		"twoValue": func() int { return []int{3, 9}[rng.Intn(2)] },
		"zipf":     func() int { z := rand.NewZipf(rng, 2.1, 1, 50); return int(z.Uint64()) },
	}
	for name, gen := range workloads {
		ranks := make([][]int, p)
		for r := range ranks {
			data := make([]int, perRank)
			for i := range data {
				data[i] = gen()
			}
			slices.Sort(data)
			ranks[r] = data
		}
		// Regular sampling: p-1 local pivots per rank, pooled, then
		// p-1 global pivots at stride p.
		var pool []int
		for _, data := range ranks {
			stride := len(data) / p
			for i := 1; i < p; i++ {
				pool = append(pool, data[i*stride])
			}
		}
		slices.Sort(pool)
		var pg []int
		for i := 1; i < p; i++ {
			pg = append(pg, pool[i*p-1])
		}
		loads := fastLoadsGlobal(t, ranks, pg)
		n := p * perRank
		bound := 4*n/p + p // 4N/p plus integer-division slack
		for j, l := range loads {
			if l > bound {
				t.Errorf("%s: process %d load %d exceeds 4N/p bound %d (loads %v)",
					name, j, l, bound, loads)
			}
		}
	}
}

func TestStableMatchesFastTotals(t *testing.T) {
	// Fast and stable split the same duplicate span; the union of data
	// assigned to the run's processes must be identical even though
	// the per-rank cuts differ.
	rng := rand.New(rand.NewSource(3))
	const p = 4
	ranks := make([][]int, p)
	for r := range ranks {
		data := make([]int, 1000)
		for i := range data {
			if rng.Float64() < 0.7 {
				data[i] = 5
			} else {
				data[i] = rng.Intn(10)
			}
		}
		slices.Sort(data)
		ranks[r] = data
	}
	pg := []int{5, 5, 5}
	runs := Runs(pg, cmpInt)
	counts := make([][]int64, len(runs))
	for k := range counts {
		counts[k] = make([]int64, p)
		for r, data := range ranks {
			counts[k][r] = LocalDupCounts(data, pg, runs, Binary[int]{cmpInt})[0]
		}
	}
	fastLoads := make([]int, p)
	stableLoads := make([]int, p)
	stableDupLoads := make([]int, p) // records equal to the dup value only
	bin := Binary[int]{cmpInt}
	for r, data := range ranks {
		fb := Fast(data, pg, bin, cmpInt)
		sb, err := Stable(data, pg, bin, cmpInt, r, counts)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(sb, len(data)); err != nil {
			t.Fatal(err)
		}
		lbv := bin.LowerBound(data, 5)
		pd := bin.UpperBound(data, 5)
		for j := 0; j < p; j++ {
			fastLoads[j] += fb[j+1] - fb[j]
			stableLoads[j] += sb[j+1] - sb[j]
			lo, hi := sb[j], sb[j+1]
			if lo < lbv {
				lo = lbv
			}
			if hi > pd {
				hi = pd
			}
			if hi > lo {
				stableDupLoads[j] += hi - lo
			}
		}
	}
	var ft, st int
	for j := 0; j < p; j++ {
		ft += fastLoads[j]
		st += stableLoads[j]
	}
	if ft != st {
		t.Fatalf("totals differ: fast %d stable %d", ft, st)
	}
	// The stable grouping hands each designated process one equal
	// group of the duplicated value's records (the run's first process
	// additionally holds the values below it, which is why we measure
	// duplicates only here).
	total := int64(0)
	for _, c := range counts[0] {
		total += c
	}
	sa := int((total + 2) / 3)
	for j := 0; j < 3; j++ {
		if stableDupLoads[j] > sa {
			t.Errorf("stable designated process %d duplicate load %d above group size %d (dup loads %v)",
				j, stableDupLoads[j], sa, stableDupLoads)
		}
	}
}

func TestStableGroupingIsRankContiguous(t *testing.T) {
	// Duplicates are grouped by global (rank, position): a later rank
	// can never contribute to an earlier group than an earlier rank's
	// later records. We verify the per-rank boundary cuts are
	// monotone in rank: the group index where rank r's duplicates end
	// is non-decreasing.
	pg := []int{4, 4}
	runs := Runs(pg, cmpInt)
	ranks := [][]int{
		{4, 4, 4, 4},
		{4, 4},
		{4, 4, 4, 4, 4, 4},
	}
	counts := [][]int64{{4, 2, 6}}
	_ = runs
	prevEndGroup := -1
	for r, data := range ranks {
		sb, err := Stable(data, pg, Binary[int]{cmpInt}, cmpInt, r, counts)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(sb, len(data)); err != nil {
			t.Fatal(err)
		}
		// Last group this rank contributes to.
		endGroup := -1
		for g := 0; g < 2; g++ {
			if sb[g+1]-sb[g] > 0 {
				endGroup = g
			}
		}
		if endGroup < prevEndGroup {
			t.Fatalf("rank %d ends at group %d before rank %d's group %d",
				r, endGroup, r-1, prevEndGroup)
		}
		prevEndGroup = endGroup
	}
}

func TestStableCountMismatchRejected(t *testing.T) {
	data := []int{4, 4, 4}
	pg := []int{4, 4}
	counts := [][]int64{{99}} // wrong count for rank 0
	if _, err := Stable(data, pg, Binary[int]{cmpInt}, cmpInt, 0, counts); err == nil {
		t.Fatal("expected count-mismatch error")
	}
	// Wrong number of count vectors.
	if _, err := Stable(data, pg, Binary[int]{cmpInt}, cmpInt, 0, nil); err == nil {
		t.Fatal("expected missing-counts error")
	}
}

func TestFastPropertyMonotoneAndComplete(t *testing.T) {
	f := func(rawData []uint8, rawPg []uint8) bool {
		data := make([]int, len(rawData))
		for i, v := range rawData {
			data[i] = int(v) % 16
		}
		slices.Sort(data)
		pg := make([]int, len(rawPg)%9)
		for i := range pg {
			pg[i] = int(rawPg[i]) % 16
		}
		slices.Sort(pg)
		bounds := Fast(data, pg, Binary[int]{cmpInt}, cmpInt)
		if len(bounds) != len(pg)+2 {
			return false
		}
		return Validate(bounds, len(data)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCounts(t *testing.T) {
	bounds := []int{0, 2, 2, 7}
	if got := Counts(bounds); !slices.Equal(got, []int{2, 0, 5}) {
		t.Fatalf("got %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]int{0, 1, 3}, 3); err != nil {
		t.Fatal(err)
	}
	if err := Validate([]int{0, 2, 1, 3}, 3); err == nil {
		t.Fatal("non-monotone accepted")
	}
	if err := Validate([]int{0, 3}, 4); err == nil {
		t.Fatal("short coverage accepted")
	}
	if err := Validate([]int{0}, 0); err == nil {
		t.Fatal("too-short bounds accepted")
	}
}
