package partition

import (
	"slices"
	"testing"
)

// FuzzFastPartition checks the fast skew-aware partition's invariants on
// arbitrary sorted data and pivots: boundaries monotone, full coverage,
// and value-consistency (everything strictly below a singleton pivot's
// range boundary really belongs there).
func FuzzFastPartition(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{2, 3})
	f.Add([]byte{5, 5, 5, 5, 5}, []byte{5, 5})
	f.Add([]byte{}, []byte{1})
	f.Fuzz(func(t *testing.T, rawData, rawPg []byte) {
		data := make([]int, len(rawData))
		for i, b := range rawData {
			data[i] = int(b) % 16
		}
		slices.Sort(data)
		if len(rawPg) > 32 {
			rawPg = rawPg[:32]
		}
		pg := make([]int, len(rawPg))
		for i, b := range rawPg {
			pg[i] = int(b) % 16
		}
		slices.Sort(pg)

		bounds := Fast(data, pg, Binary[int]{cmpInt}, cmpInt)
		if len(bounds) != len(pg)+2 {
			t.Fatalf("bounds length %d", len(bounds))
		}
		if err := Validate(bounds, len(data)); err != nil {
			t.Fatal(err)
		}
		// Value consistency: records below bounds[j+1] must be <= pg[j]
		// unless pg[j] is part of a duplicated run being split.
		runs := Runs(pg, cmpInt)
		inRun := make([]bool, len(pg))
		for _, r := range runs {
			for i := r.Start; i < r.Start+r.Len; i++ {
				inRun[i] = true
			}
		}
		for j, pv := range pg {
			if inRun[j] {
				continue
			}
			for _, v := range data[:bounds[j+1]] {
				if cmpInt(v, pv) > 0 {
					t.Fatalf("record %d above pivot %d leaked below its boundary", v, pv)
				}
			}
		}
	})
}

// FuzzStablePartition checks the stable partition against the same
// invariants using locally computed duplicate counts.
func FuzzStablePartition(f *testing.F) {
	f.Add([]byte{5, 5, 5, 1, 2}, []byte{5, 5}, uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, rawData, rawPg []byte, rankRaw, worldRaw uint8) {
		data := make([]int, len(rawData))
		for i, b := range rawData {
			data[i] = int(b) % 8
		}
		slices.Sort(data)
		if len(rawPg) > 16 {
			rawPg = rawPg[:16]
		}
		pg := make([]int, len(rawPg))
		for i, b := range rawPg {
			pg[i] = int(b) % 8
		}
		slices.Sort(pg)

		world := int(worldRaw)%8 + 1
		rank := int(rankRaw) % world
		loc := Binary[int]{cmpInt}
		runs := Runs(pg, cmpInt)
		local := LocalDupCounts(data, pg, runs, loc)
		counts := make([][]int64, len(runs))
		for k := range counts {
			counts[k] = make([]int64, world)
			for r := 0; r < world; r++ {
				// Give every simulated rank the same local profile:
				// the partition only needs counts[k][rank] to match
				// reality; the rest shape the grouping.
				counts[k][r] = local[k]
			}
		}
		bounds, err := Stable(data, pg, loc, cmpInt, rank, counts)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(bounds, len(data)); err != nil {
			t.Fatal(err)
		}
	})
}
