package partition

// Replicated is a faithful port of the paper's SdssReplicated (Fig. 3):
// for global pivot index i it scans the neighbourhood of pg[i] and
// reports whether the pivot is duplicated (fr), how many pivots share
// its value (rs), the rank of pg[i] among those duplicates (rr), and the
// index of the pivot immediately before the duplicated span (ppvIdx, -1
// when the span starts at pivot 0 — the case the listing leaves
// undefined; callers then bound the span with lower_bound of the value
// itself).
//
// The batched Runs/LocalDupCounts path subsumes this function in the
// sort itself; it is kept as the reference implementation the tests
// cross-check against.
func Replicated[T any](pg []T, i int, cmp func(a, b T) int) (fr bool, rs, rr int, ppvIdx int) {
	rs = 1
	j := i - 1
	for j >= 0 && cmp(pg[j], pg[i]) == 0 {
		j--
		rs++
		fr = true
	}
	ppvIdx = j
	rr = rs - 1
	for j = i + 1; j < len(pg) && cmp(pg[j], pg[i]) == 0; j++ {
		rs++
		fr = true
	}
	return fr, rs, rr, ppvIdx
}
