package codec

import (
	"encoding/binary"
	"math"
)

// PTFRecord models one Palomar Transient Factory detection: the
// real-bogus classifier score used as the sorting key, plus the object
// identifier carried as payload. The paper sorts 1e9 such records whose
// score column is 28.02% duplicated.
type PTFRecord struct {
	Score float64 // real-bogus score, the sorting key
	ObjID uint64  // detected-object identifier (payload)
}

// ComparePTF orders PTF records by score only; ObjID is payload and must
// never influence the order (the paper's no-secondary-keys requirement).
func ComparePTF(a, b PTFRecord) int {
	switch {
	case a.Score < b.Score:
		return -1
	case a.Score > b.Score:
		return 1
	}
	return 0
}

// PTFCodec serialises PTFRecord in 16 bytes.
type PTFCodec struct{}

func (PTFCodec) Size() int { return 16 }

// ZeroCopy: wire layout (score, objid; both 8 bytes LE) is the struct
// layout.
func (PTFCodec) ZeroCopy() bool { return true }

func (PTFCodec) Marshal(dst []byte, r PTFRecord) {
	binary.LittleEndian.PutUint64(dst[0:], math.Float64bits(r.Score))
	binary.LittleEndian.PutUint64(dst[8:], r.ObjID)
}

func (PTFCodec) Unmarshal(src []byte) PTFRecord {
	return PTFRecord{
		Score: math.Float64frombits(binary.LittleEndian.Uint64(src[0:])),
		ObjID: binary.LittleEndian.Uint64(src[8:]),
	}
}

// Particle models one cosmology-simulation particle as sorted by
// BD-CATS: the cluster ID is the key; position and velocity are payload.
type Particle struct {
	ClusterID int64      // key
	Pos       [3]float32 // x, y, z (payload)
	Vel       [3]float32 // vx, vy, vz (payload)
}

// CompareParticles orders particles by cluster ID only.
func CompareParticles(a, b Particle) int {
	switch {
	case a.ClusterID < b.ClusterID:
		return -1
	case a.ClusterID > b.ClusterID:
		return 1
	}
	return 0
}

// ParticleCodec serialises Particle in 32 bytes.
type ParticleCodec struct{}

func (ParticleCodec) Size() int { return 32 }

// ZeroCopy: wire layout (cluster id, 3×pos, 3×vel) is the struct
// layout with no padding.
func (ParticleCodec) ZeroCopy() bool { return true }

// Uint64Key: particles sort by ClusterID; flipping the sign bit makes
// unsigned order match the signed comparator. Records with equal
// cluster ids have equal keys, so the stable LSD pass preserves their
// order.
func (ParticleCodec) Uint64Key(p Particle) uint64 { return uint64(p.ClusterID) ^ (1 << 63) }

func (ParticleCodec) Marshal(dst []byte, p Particle) {
	binary.LittleEndian.PutUint64(dst[0:], uint64(p.ClusterID))
	for i := 0; i < 3; i++ {
		binary.LittleEndian.PutUint32(dst[8+4*i:], math.Float32bits(p.Pos[i]))
		binary.LittleEndian.PutUint32(dst[20+4*i:], math.Float32bits(p.Vel[i]))
	}
}

func (ParticleCodec) Unmarshal(src []byte) Particle {
	var p Particle
	p.ClusterID = int64(binary.LittleEndian.Uint64(src[0:]))
	for i := 0; i < 3; i++ {
		p.Pos[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[8+4*i:]))
		p.Vel[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[20+4*i:]))
	}
	return p
}

// Tagged carries a key plus the record's origin (rank, index), used by
// the test suite to verify stability: the comparator sees only Key, so a
// stable sort must leave equal keys ordered by (Rank, Index).
type Tagged struct {
	Key   float64
	Rank  int32
	Index int32
}

// CompareTagged orders Tagged records by key only.
func CompareTagged(a, b Tagged) int {
	switch {
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	}
	return 0
}

// TaggedCodec serialises Tagged in 16 bytes.
type TaggedCodec struct{}

func (TaggedCodec) Size() int { return 16 }

// ZeroCopy: wire layout (key, rank, index) is the struct layout.
func (TaggedCodec) ZeroCopy() bool { return true }

func (TaggedCodec) Marshal(dst []byte, r Tagged) {
	binary.LittleEndian.PutUint64(dst[0:], math.Float64bits(r.Key))
	binary.LittleEndian.PutUint32(dst[8:], uint32(r.Rank))
	binary.LittleEndian.PutUint32(dst[12:], uint32(r.Index))
}

func (TaggedCodec) Unmarshal(src []byte) Tagged {
	return Tagged{
		Key:   math.Float64frombits(binary.LittleEndian.Uint64(src[0:])),
		Rank:  int32(binary.LittleEndian.Uint32(src[8:])),
		Index: int32(binary.LittleEndian.Uint32(src[12:])),
	}
}

// AppendSlice is the BulkAppender fast path (see codec.EncodeSlice).
func (TaggedCodec) AppendSlice(dst []byte, recs []Tagged) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 16*len(recs))...)
	for _, r := range recs {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(r.Key))
		binary.LittleEndian.PutUint32(dst[off+8:], uint32(r.Rank))
		binary.LittleEndian.PutUint32(dst[off+12:], uint32(r.Index))
		off += 16
	}
	return dst
}
