package codec

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"unsafe"
)

// marshalLoop is the reference encoder: the plain per-record Marshal
// loop with no fast paths. The zero-copy property tests compare every
// accelerated encode against it byte for byte.
func marshalLoop[T any](c Codec[T], recs []T) []byte {
	sz := c.Size()
	out := make([]byte, sz*len(recs))
	for i, r := range recs {
		c.Marshal(out[i*sz:(i+1)*sz], r)
	}
	return out
}

// unmarshalLoop is the reference decoder.
func unmarshalLoop[T any](c Codec[T], wire []byte) []T {
	sz := c.Size()
	out := make([]T, 0, len(wire)/sz)
	for off := 0; off < len(wire); off += sz {
		out = append(out, c.Unmarshal(wire[off:off+sz]))
	}
	return out
}

// checkZeroCopyCodec asserts the full zero-copy contract for one codec
// on one input: View is byte-identical to the marshal loop, EncodeSlice
// agrees, DecodeSlice/DecodeAppend invert it, and appending to a view
// does not scribble into the record slab.
func checkZeroCopyCodec[T any](t *testing.T, c Codec[T], recs []T) {
	t.Helper()
	if !IsZeroCopy[T](c) {
		t.Fatalf("%T does not qualify for zero copy on this machine", c)
	}
	want := marshalLoop(c, recs)

	wire, ok := View(c, recs)
	if !ok {
		t.Fatalf("%T: View refused a zero-copy codec", c)
	}
	if !bytes.Equal(wire, want) {
		t.Fatalf("%T: View bytes differ from the marshal loop", c)
	}
	if got := EncodeSlice(c, nil, recs); !bytes.Equal(got, want) {
		t.Fatalf("%T: EncodeSlice bytes differ from the marshal loop", c)
	}
	// Appending onto a non-empty prefix must splice, not corrupt.
	prefix := []byte{0xde, 0xad}
	if got := EncodeSlice(c, prefix, recs); !bytes.Equal(got[2:], want) || got[0] != 0xde {
		t.Fatalf("%T: EncodeSlice with prefix corrupted the buffer", c)
	}

	dec, err := DecodeSlice(c, want)
	if err != nil {
		t.Fatalf("%T: DecodeSlice: %v", c, err)
	}
	if !reflect.DeepEqual(dec, unmarshalLoop(c, want)) {
		t.Fatalf("%T: DecodeSlice differs from the unmarshal loop", c)
	}
	if len(recs) > 0 && !reflect.DeepEqual(dec, recs) {
		t.Fatalf("%T: decode(encode(recs)) != recs", c)
	}
	app, err := DecodeAppend(c, append([]T(nil), recs[:min(1, len(recs))]...), want)
	if err != nil {
		t.Fatalf("%T: DecodeAppend: %v", c, err)
	}
	if len(app) != min(1, len(recs))+len(recs) {
		t.Fatalf("%T: DecodeAppend length %d", c, len(app))
	}

	if len(recs) > 0 {
		// len == cap on views: an append must reallocate, leaving the
		// record slab untouched.
		if len(wire) != cap(wire) {
			t.Fatalf("%T: view has spare capacity %d", c, cap(wire)-len(wire))
		}
		before := append([]T(nil), recs...)
		_ = append(wire, 0xff)
		if !reflect.DeepEqual(recs, before) {
			t.Fatalf("%T: appending to a view mutated the records", c)
		}
	}
}

// TestZeroCopyMatchesMarshal is the property test of the tentpole: for
// every built-in zero-copy codec, the view of a record slab is
// byte-identical to the per-record marshal loop and decodes back to the
// same records, across empty, single and bulk inputs.
func TestZeroCopyMatchesMarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{0, 1, 3, 257, 4096}
	for _, n := range sizes {
		f64 := make([]float64, n)
		u64 := make([]uint64, n)
		i64 := make([]int64, n)
		ptf := make([]PTFRecord, n)
		par := make([]Particle, n)
		tag := make([]Tagged, n)
		for i := 0; i < n; i++ {
			f64[i] = rng.NormFloat64()
			u64[i] = rng.Uint64()
			i64[i] = int64(rng.Uint64())
			ptf[i] = PTFRecord{Score: rng.Float64(), ObjID: rng.Uint64()}
			par[i] = Particle{
				ClusterID: int64(rng.Uint64()),
				Pos:       [3]float32{rng.Float32(), rng.Float32(), rng.Float32()},
				Vel:       [3]float32{rng.Float32(), rng.Float32(), rng.Float32()},
			}
			tag[i] = Tagged{Key: rng.Float64(), Rank: int32(rng.Intn(64)), Index: int32(i)}
		}
		checkZeroCopyCodec[float64](t, Float64{}, f64)
		checkZeroCopyCodec[uint64](t, Uint64{}, u64)
		checkZeroCopyCodec[int64](t, Int64{}, i64)
		checkZeroCopyCodec[PTFRecord](t, PTFCodec{}, ptf)
		checkZeroCopyCodec[Particle](t, ParticleCodec{}, par)
		checkZeroCopyCodec[Tagged](t, TaggedCodec{}, tag)
	}
}

// TestIsZeroCopyGates walks the qualification matrix: undeclared codecs
// never qualify, declared ones do only when the in-memory width matches
// the wire width, and Funcs follows its ZeroCopyOK knob.
func TestIsZeroCopyGates(t *testing.T) {
	plain := Funcs[uint64]{
		Width:     8,
		MarshalFn: Uint64{}.Marshal,
		UnmarshFn: Uint64{}.Unmarshal,
	}
	if IsZeroCopy[uint64](plain) {
		t.Error("Funcs without ZeroCopyOK qualified")
	}
	plain.ZeroCopyOK = true
	if !IsZeroCopy[uint64](plain) {
		t.Error("Funcs with ZeroCopyOK and matching width did not qualify")
	}
	if _, ok := View[uint64](Funcs[uint64]{Width: 8, MarshalFn: plain.MarshalFn, UnmarshFn: plain.UnmarshFn}, []uint64{1}); ok {
		t.Error("View succeeded on a non-zero-copy codec")
	}

	// A codec that (wrongly) declares zero copy with a wire width that
	// differs from the memory width must be rejected by the size leg —
	// that check is what keeps a mistaken declaration from corrupting
	// data.
	type padded struct {
		A uint32
		B uint64 // 4 bytes of struct padding before this field
	}
	bad := Funcs[padded]{
		Width:      12, // wire: 4 + 8; memory: 16 with padding
		MarshalFn:  func(dst []byte, r padded) {},
		UnmarshFn:  func(src []byte) padded { return padded{} },
		ZeroCopyOK: true,
	}
	if unsafe.Sizeof(padded{}) == 12 {
		t.Fatal("test premise broken: padded struct has no padding")
	}
	if IsZeroCopy[padded](bad) {
		t.Error("codec with padded in-memory layout qualified for zero copy")
	}
}

// TestUint64KeyOrder: the integer keys the radix dispatch sorts by must
// order exactly like the codecs' canonical comparators, including the
// signed/unsigned boundary.
func TestUint64KeyOrder(t *testing.T) {
	ints := []int64{-1 << 63, -12345, -1, 0, 1, 98765, 1<<63 - 1}
	key, ok := Uint64KeyOf[int64](Int64{})
	if !ok {
		t.Fatal("Int64 has no Uint64Key")
	}
	for i := 1; i < len(ints); i++ {
		if key(ints[i-1]) >= key(ints[i]) {
			t.Errorf("key(%d) = %d not below key(%d) = %d",
				ints[i-1], key(ints[i-1]), ints[i], key(ints[i]))
		}
	}
	pkey, ok := Uint64KeyOf[Particle](ParticleCodec{})
	if !ok {
		t.Fatal("ParticleCodec has no Uint64Key")
	}
	a, b := Particle{ClusterID: -5}, Particle{ClusterID: 3}
	if pkey(a) >= pkey(b) {
		t.Errorf("particle key order broken: %d >= %d", pkey(a), pkey(b))
	}
	if _, ok := Uint64KeyOf[float64](Float64{}); ok {
		t.Error("Float64 claims an integer key")
	}
}
