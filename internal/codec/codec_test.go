package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloat64RoundTrip(t *testing.T) {
	c := Float64{}
	buf := make([]byte, c.Size())
	for _, v := range []float64{0, -0, 1.5, -math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1)} {
		c.Marshal(buf, v)
		if got := c.Unmarshal(buf); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
	// NaN round-trips bit-exactly.
	c.Marshal(buf, math.NaN())
	if got := c.Unmarshal(buf); !math.IsNaN(got) {
		t.Fatal("NaN lost")
	}
}

func TestIntCodecsRoundTrip(t *testing.T) {
	u := Uint64{}
	buf := make([]byte, 8)
	for _, v := range []uint64{0, 1, math.MaxUint64, 1 << 63} {
		u.Marshal(buf, v)
		if got := u.Unmarshal(buf); got != v {
			t.Fatalf("uint64 %v -> %v", v, got)
		}
	}
	i := Int64{}
	for _, v := range []int64{0, -1, math.MaxInt64, math.MinInt64} {
		i.Marshal(buf, v)
		if got := i.Unmarshal(buf); got != v {
			t.Fatalf("int64 %v -> %v", v, got)
		}
	}
}

func TestEncodeDecodeSlice(t *testing.T) {
	c := Float64{}
	in := []float64{3, 1, 4, 1, 5}
	buf := EncodeSlice(c, nil, in)
	if len(buf) != 40 {
		t.Fatalf("buffer length %d", len(buf))
	}
	out, err := DecodeSlice(c, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("index %d: %v != %v", i, out[i], in[i])
		}
	}
	// Appending to an existing buffer preserves the prefix.
	buf2 := EncodeSlice(c, []byte{9, 9}, in[:1])
	if buf2[0] != 9 || buf2[1] != 9 || len(buf2) != 10 {
		t.Fatalf("prefix lost: %v", buf2)
	}
}

func TestDecodeSliceRagged(t *testing.T) {
	c := Float64{}
	if _, err := DecodeSlice(c, make([]byte, 9)); err == nil {
		t.Fatal("ragged buffer accepted")
	}
	if _, err := DecodeAppend(c, nil, make([]byte, 7)); err == nil {
		t.Fatal("ragged buffer accepted by DecodeAppend")
	}
}

func TestDecodeAppendReuses(t *testing.T) {
	c := Uint64{}
	dst := make([]uint64, 0, 10)
	buf := EncodeSlice(c, nil, []uint64{1, 2, 3})
	out, err := DecodeAppend(c, dst, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[2] != 3 {
		t.Fatalf("got %v", out)
	}
}

func TestPTFCodecRoundTrip(t *testing.T) {
	c := PTFCodec{}
	buf := make([]byte, c.Size())
	r := PTFRecord{Score: 0.75, ObjID: 123456789}
	c.Marshal(buf, r)
	if got := c.Unmarshal(buf); got != r {
		t.Fatalf("%+v -> %+v", r, got)
	}
}

func TestParticleCodecRoundTrip(t *testing.T) {
	c := ParticleCodec{}
	buf := make([]byte, c.Size())
	p := Particle{ClusterID: -7, Pos: [3]float32{1, 2, 3}, Vel: [3]float32{-4, 5, -6}}
	c.Marshal(buf, p)
	if got := c.Unmarshal(buf); got != p {
		t.Fatalf("%+v -> %+v", p, got)
	}
}

func TestTaggedCodecRoundTrip(t *testing.T) {
	c := TaggedCodec{}
	buf := make([]byte, c.Size())
	r := Tagged{Key: -0.5, Rank: 31, Index: -2}
	c.Marshal(buf, r)
	if got := c.Unmarshal(buf); got != r {
		t.Fatalf("%+v -> %+v", r, got)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(scores []float64, ids []uint64) bool {
		n := min(len(scores), len(ids))
		recs := make([]PTFRecord, n)
		for i := 0; i < n; i++ {
			recs[i] = PTFRecord{Score: scores[i], ObjID: ids[i]}
		}
		out, err := DecodeSlice(PTFCodec{}, EncodeSlice(PTFCodec{}, nil, recs))
		if err != nil || len(out) != n {
			return false
		}
		for i := range recs {
			same := out[i] == recs[i] ||
				(math.IsNaN(out[i].Score) && math.IsNaN(recs[i].Score) && out[i].ObjID == recs[i].ObjID)
			if !same {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareFunctions(t *testing.T) {
	if ComparePTF(PTFRecord{Score: 1}, PTFRecord{Score: 2}) >= 0 {
		t.Fatal("ComparePTF order")
	}
	// Payload must never influence comparisons.
	a := PTFRecord{Score: 1, ObjID: 9}
	b := PTFRecord{Score: 1, ObjID: 2}
	if ComparePTF(a, b) != 0 {
		t.Fatal("ComparePTF inspected payload")
	}
	if CompareParticles(Particle{ClusterID: -5}, Particle{ClusterID: 3}) >= 0 {
		t.Fatal("CompareParticles order")
	}
	if CompareTagged(Tagged{Key: 2, Rank: 0}, Tagged{Key: 2, Rank: 9}) != 0 {
		t.Fatal("CompareTagged inspected payload")
	}
}

func TestFuncsAdapter(t *testing.T) {
	type pair struct{ A, B uint8 }
	c := Funcs[pair]{
		Width:     2,
		MarshalFn: func(dst []byte, r pair) { dst[0], dst[1] = r.A, r.B },
		UnmarshFn: func(src []byte) pair { return pair{src[0], src[1]} },
	}
	buf := EncodeSlice[pair](c, nil, []pair{{1, 2}, {3, 4}})
	out, err := DecodeSlice[pair](c, buf)
	if err != nil || len(out) != 2 || out[1] != (pair{3, 4}) {
		t.Fatalf("adapter round trip failed: %v %v", out, err)
	}
}

func BenchmarkEncodeDecodePTF(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	recs := make([]PTFRecord, 1<<14)
	for i := range recs {
		recs[i] = PTFRecord{Score: rng.Float64(), ObjID: rng.Uint64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := EncodeSlice(PTFCodec{}, nil, recs)
		if _, err := DecodeSlice(PTFCodec{}, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBulkAppendMatchesGenericPath pins the BulkAppender fast path to
// the byte-exact output of the per-record Marshal loop, including the
// append-to-existing-prefix contract.
func TestBulkAppendMatchesGenericPath(t *testing.T) {
	generic := func(c Codec[float64], dst []byte, recs []float64) []byte {
		sz := c.Size()
		off := len(dst)
		dst = append(dst, make([]byte, sz*len(recs))...)
		for _, r := range recs {
			c.Marshal(dst[off:off+sz], r)
			off += sz
		}
		return dst
	}
	recs := []float64{0, 1.5, -2.25, math.Inf(1), math.Pi}
	prefix := []byte{0xde, 0xad}
	want := generic(Float64{}, append([]byte(nil), prefix...), recs)
	got := EncodeSlice(Float64{}, append([]byte(nil), prefix...), recs)
	if !bytes.Equal(want, got) {
		t.Fatalf("Float64 fast path diverges:\nwant %x\ngot  %x", want, got)
	}

	tagged := []Tagged{{Key: 1.5, Rank: 3, Index: -7}, {Key: -9, Rank: 0, Index: 1 << 30}}
	wantT := make([]byte, 0)
	for _, r := range tagged {
		buf := make([]byte, 16)
		TaggedCodec{}.Marshal(buf, r)
		wantT = append(wantT, buf...)
	}
	gotT := EncodeSlice(TaggedCodec{}, nil, tagged)
	if !bytes.Equal(wantT, gotT) {
		t.Fatalf("Tagged fast path diverges:\nwant %x\ngot  %x", wantT, gotT)
	}
}
