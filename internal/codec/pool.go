package codec

import "sync"

// BufferPool recycles encode/decode byte buffers for the staged
// exchange. A chunked all-to-all encodes thousands of short-lived
// buffers of (nearly) identical size; pooling them keeps the staging
// path allocation-free in steady state, which is what lets the memory
// gauge's staging window describe the true footprint. Safe for
// concurrent use; the zero value is ready. A nil pool degrades to
// plain allocation.
type BufferPool struct {
	mu           sync.Mutex
	free         [][]byte
	hits, misses int64
}

// Get returns a zero-length buffer with capacity at least n, reusing a
// pooled buffer when one is large enough.
func (p *BufferPool) Get(n int) []byte {
	if p == nil {
		return make([]byte, 0, n)
	}
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= n {
			b := p.free[i]
			p.free[i] = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			p.hits++
			p.mu.Unlock()
			return b[:0]
		}
	}
	p.misses++
	p.mu.Unlock()
	return make([]byte, 0, n)
}

// Put returns b's storage to the pool. The caller must not touch b
// afterwards. Zero-capacity buffers are dropped.
func (p *BufferPool) Put(b []byte) {
	if p == nil || cap(b) == 0 {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, b[:0])
	p.mu.Unlock()
}

// Stats reports how many Gets were served from the free list (hits)
// versus freshly allocated (misses).
func (p *BufferPool) Stats() (hits, misses int64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}
