// Package codec serialises fixed-width records for the all-to-all
// exchange. The communication layer moves []byte, as MPI does; codecs
// are the typed boundary between the generic sorting algorithms and the
// wire. All records in the paper's workloads are fixed width (a key plus
// an optional fixed payload), so the interface is fixed-width: this keeps
// the displacement arithmetic of the exchange exact (bytes = count×Size).
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec converts single records to and from a fixed-width wire format.
// Implementations must be stateless and safe for concurrent use.
type Codec[T any] interface {
	// Size is the exact number of bytes Marshal writes per record.
	Size() int
	// Marshal writes rec into dst[:Size()]. dst must have at least
	// Size() bytes.
	Marshal(dst []byte, rec T)
	// Unmarshal reads one record from src[:Size()].
	Unmarshal(src []byte) T
}

// BulkAppender is an optional codec fast path: a codec that also
// implements it bulk-appends the wire form of a whole slice in one
// call, skipping the per-record dispatch of the generic loop. The
// exchange and checkpoint paths marshal every record through
// EncodeSlice, so the built-in codecs provide it.
type BulkAppender[T any] interface {
	AppendSlice(dst []byte, recs []T) []byte
}

// EncodeSlice appends the wire form of recs to dst and returns the
// extended buffer. Zero-copy-capable codecs (see IsZeroCopy) take a
// single-memcpy fast path; the wire bytes are identical either way.
func EncodeSlice[T any](c Codec[T], dst []byte, recs []T) []byte {
	if wire, ok := View(c, recs); ok {
		return append(dst, wire...)
	}
	if ba, ok := any(c).(BulkAppender[T]); ok {
		return ba.AppendSlice(dst, recs)
	}
	sz := c.Size()
	off := len(dst)
	dst = append(dst, make([]byte, sz*len(recs))...)
	for _, r := range recs {
		c.Marshal(dst[off:off+sz], r)
		off += sz
	}
	return dst
}

// DecodeSlice decodes all records in src, which must be a whole number
// of records. Zero-copy-capable codecs decode by one memcpy into the
// fresh slice instead of per-record Unmarshal calls.
func DecodeSlice[T any](c Codec[T], src []byte) ([]T, error) {
	sz := c.Size()
	if len(src)%sz != 0 {
		return nil, fmt.Errorf("codec: buffer length %d is not a multiple of record size %d", len(src), sz)
	}
	if IsZeroCopy(c) {
		return appendRaw(make([]T, 0, len(src)/sz), src, sz), nil
	}
	out := make([]T, 0, len(src)/sz)
	for off := 0; off < len(src); off += sz {
		out = append(out, c.Unmarshal(src[off:off+sz]))
	}
	return out, nil
}

// DecodeAppend decodes src into dst (appending) and returns the extended
// slice, avoiding an allocation when dst has capacity. Zero-copy-capable
// codecs append by one memcpy.
func DecodeAppend[T any](c Codec[T], dst []T, src []byte) ([]T, error) {
	sz := c.Size()
	if len(src)%sz != 0 {
		return dst, fmt.Errorf("codec: buffer length %d is not a multiple of record size %d", len(src), sz)
	}
	if IsZeroCopy(c) {
		return appendRaw(dst, src, sz), nil
	}
	for off := 0; off < len(src); off += sz {
		dst = append(dst, c.Unmarshal(src[off:off+sz]))
	}
	return dst, nil
}

// Float64 encodes float64 keys as little-endian IEEE-754.
type Float64 struct{}

func (Float64) Size() int { return 8 }

// ZeroCopy: the wire form is the float's memory image (LE IEEE-754).
func (Float64) ZeroCopy() bool { return true }

func (Float64) Marshal(dst []byte, v float64) {
	binary.LittleEndian.PutUint64(dst, math.Float64bits(v))
}

func (Float64) Unmarshal(src []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(src))
}

// AppendSlice is the BulkAppender fast path: a direct loop the
// compiler can inline, several times faster than per-record Marshal
// calls through the generic dictionary.
func (Float64) AppendSlice(dst []byte, recs []float64) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(recs))...)
	for _, v := range recs {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
		off += 8
	}
	return dst
}

// Uint64 encodes uint64 keys little-endian.
type Uint64 struct{}

func (Uint64) Size() int                    { return 8 }
func (Uint64) Marshal(dst []byte, v uint64) { binary.LittleEndian.PutUint64(dst, v) }
func (Uint64) Unmarshal(src []byte) uint64  { return binary.LittleEndian.Uint64(src) }
func (Uint64) ZeroCopy() bool               { return true }

// Uint64Key: the record is its own radix key.
func (Uint64) Uint64Key(v uint64) uint64 { return v }

// Int64 encodes int64 keys little-endian (two's complement).
type Int64 struct{}

func (Int64) Size() int                   { return 8 }
func (Int64) Marshal(dst []byte, v int64) { binary.LittleEndian.PutUint64(dst, uint64(v)) }
func (Int64) Unmarshal(src []byte) int64  { return int64(binary.LittleEndian.Uint64(src)) }
func (Int64) ZeroCopy() bool              { return true }

// Uint64Key flips the sign bit so unsigned order matches signed order.
func (Int64) Uint64Key(v int64) uint64 { return uint64(v) ^ (1 << 63) }

// Funcs adapts three functions into a Codec, for ad-hoc record types.
type Funcs[T any] struct {
	Width     int
	MarshalFn func(dst []byte, rec T)
	UnmarshFn func(src []byte) T
	// ZeroCopyOK, when set, asserts that MarshalFn writes exactly the
	// record's little-endian memory image (fixed payload, no padding,
	// fields in declaration order) — the zero-copy contract of
	// IsZeroCopy. Leave false for any codec that reorders, omits or
	// transforms fields.
	ZeroCopyOK bool
}

func (f Funcs[T]) Size() int               { return f.Width }
func (f Funcs[T]) Marshal(dst []byte, r T) { f.MarshalFn(dst, r) }
func (f Funcs[T]) Unmarshal(src []byte) T  { return f.UnmarshFn(src) }
func (f Funcs[T]) ZeroCopy() bool          { return f.ZeroCopyOK }
