package codec

import "unsafe"

// The zero-copy fast path. A codec qualifies when the wire form of a
// record is byte-for-byte its in-memory representation: fixed width, no
// padding, fields in declaration order, little-endian integers. For
// such codecs the encode step of the exchange degenerates to slicing
// the record slab and the decode step to one memcpy into the receive
// slab — no per-record Marshal/Unmarshal, no pooled staging copies.
//
// The contract has three legs, all checked at runtime by IsZeroCopy:
//
//  1. The codec declares the property (ZeroCopyCapable). Declaring it
//     asserts that Marshal(dst, r) produces exactly the bytes of r's
//     memory image on a little-endian machine, and Unmarshal inverts
//     it. All built-in codecs whose wire layout mirrors their struct
//     layout declare it.
//  2. The host is little-endian (the wire format is little-endian, so
//     on a big-endian host the memory image differs and every path
//     falls back to the marshal loop).
//  3. unsafe.Sizeof(T) == Size(): the Go in-memory record is exactly
//     as wide as the wire record, i.e. the struct has no padding the
//     wire format would not carry.
//
// Aliasing rule: a View aliases the records' storage. Callers handing
// a view to a transport must not mutate the records until the send has
// been consumed, and must not retain received views past their Drain.

// hostLittleEndian reports whether this machine lays integers out in
// little-endian byte order — the byte order of the wire format.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ZeroCopyCapable is an optional codec capability: implementing it with
// a true return asserts that the codec's wire format is byte-identical
// to the record's in-memory representation on little-endian hardware.
type ZeroCopyCapable interface {
	ZeroCopy() bool
}

// IsZeroCopy reports whether c qualifies for the zero-copy fast path on
// this machine: the codec declares the capability, the host is
// little-endian, and the in-memory record width equals the wire width.
func IsZeroCopy[T any](c Codec[T]) bool {
	zc, ok := any(c).(ZeroCopyCapable)
	if !ok || !zc.ZeroCopy() || !hostLittleEndian {
		return false
	}
	var z T
	return int(unsafe.Sizeof(z)) == c.Size()
}

// View returns the wire form of recs as a byte slice aliasing recs'
// storage — zero copies — or (nil, false) when c does not qualify for
// zero copy on this machine. The returned slice has full capacity, so
// appending to it never scribbles past the records.
func View[T any](c Codec[T], recs []T) ([]byte, bool) {
	if !IsZeroCopy(c) {
		return nil, false
	}
	return sliceBytes(recs), true
}

// sliceBytes reinterprets recs' backing array as bytes. len == cap, so
// an append on the result always reallocates instead of growing into
// adjacent memory.
func sliceBytes[T any](recs []T) []byte {
	if len(recs) == 0 {
		return []byte{}
	}
	var z T
	return unsafe.Slice((*byte)(unsafe.Pointer(&recs[0])), len(recs)*int(unsafe.Sizeof(z)))
}

// appendRaw bulk-decodes wire (a whole number of records of size sz)
// onto dst by a single memcpy. Caller guarantees the codec qualifies
// for zero copy and len(wire)%sz == 0.
func appendRaw[T any](dst []T, wire []byte, sz int) []T {
	n := len(wire) / sz
	if n == 0 {
		return dst
	}
	if cap(dst)-len(dst) < n {
		grown := make([]T, len(dst), max(2*cap(dst), len(dst)+n))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:len(dst)+n]
	copy(sliceBytes(dst[len(dst)-n:]), wire)
	return dst
}

// Uint64Keyer is an optional codec capability: the codec's records sort
// by an integer key, and Uint64Key extracts it as a uint64 whose
// unsigned order equals the codec's canonical record order. It is what
// lets local ordering dispatch to the LSD radix pass instead of a
// comparison sort; callers must still verify the supplied comparator
// agrees with the key order (radix.DispatchLocal does).
type Uint64Keyer[T any] interface {
	Uint64Key(rec T) uint64
}

// Uint64KeyOf returns c's integer key extractor, if it has one.
func Uint64KeyOf[T any](c Codec[T]) (func(T) uint64, bool) {
	k, ok := any(c).(Uint64Keyer[T])
	if !ok {
		return nil, false
	}
	return k.Uint64Key, true
}
