package codec

import "testing"

func TestBufferPoolReuse(t *testing.T) {
	var p BufferPool
	a := p.Get(64)
	if len(a) != 0 || cap(a) < 64 {
		t.Fatalf("got len %d cap %d", len(a), cap(a))
	}
	p.Put(a)
	b := p.Get(32) // smaller request must reuse the 64-byte buffer
	if cap(b) < 64 {
		t.Fatalf("expected recycled buffer, got cap %d", cap(b))
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats: %d hits %d misses", hits, misses)
	}
	// A request larger than anything pooled must allocate.
	p.Put(b)
	c := p.Get(1024)
	if _, misses = p.Stats(); misses != 2 {
		t.Fatalf("oversized Get should miss, misses=%d", misses)
	}
	p.Put(c)
	// The 64-byte buffer is still pooled alongside the 1024 one.
	if d := p.Get(512); cap(d) < 1024 {
		t.Fatalf("expected the large buffer, got cap %d", cap(d))
	}
}

func TestBufferPoolNilAndEmpty(t *testing.T) {
	var p *BufferPool
	b := p.Get(16)
	if cap(b) < 16 {
		t.Fatal("nil pool must still allocate")
	}
	p.Put(b) // must not panic
	if h, m := p.Stats(); h != 0 || m != 0 {
		t.Fatal("nil pool stats must be zero")
	}
	var real BufferPool
	real.Put(nil) // zero-capacity buffers are dropped
	if _, m := real.Stats(); m != 0 {
		t.Fatal("Put must not touch stats")
	}
}
