// Package hyksort implements HykSort (Sundar, Malhotra, Biros — ICS'13),
// the state-of-the-art baseline the paper compares against: a
// generalised hypercube quicksort that recursively splits the
// communicator into k groups using histogram-selected splitters and
// exchanges data in log_k(p) staged rounds, avoiding a single monolithic
// all-to-all.
//
// Like the original (when run without secondary sorting keys), this
// implementation partitions records by upper_bound on the splitters: all
// records equal to a splitter value land in one group. On heavily
// duplicated data the histogram refinement cannot separate equal keys,
// splitters collapse onto the popular values, and the data concentrates
// on few ranks — the load imbalance and out-of-memory failure the
// paper's Figs. 6c/8/10 and Tables 3/4 document.
//
// The per-round bucket exchange runs through core.ExchangeSorted, the
// shared driver exchange: staged/zero-copy collectives, memory-budget
// accounting and the optional spill tier come from there rather than a
// private all-to-all.
package hyksort

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/partition"
	"sdssort/internal/pivots"
	"sdssort/internal/psort"
	"sdssort/internal/radix"
	"sdssort/internal/trace"
)

// Options configures HykSort.
type Options struct {
	// K is the splitting arity per round; the HykSort paper found 128
	// optimal on their testbed and the SDS-Sort paper uses that value.
	K int
	// HistogramRounds is the number of refinement iterations in
	// splitter selection.
	HistogramRounds int
	// Cores bounds the goroutines used for local sorting.
	Cores int
	// Mem emulates the rank's memory budget (nil = unlimited).
	Mem *memlimit.Gauge
	// Timer accrues per-phase time when non-nil.
	Timer *metrics.PhaseTimer
	// StageBytes bounds the staging window of the per-round exchange,
	// as core.Options.StageBytes does for SDS-Sort. Zero keeps the
	// monolithic exchange.
	StageBytes int64
	// Exchange accrues staged-exchange counters when non-nil.
	Exchange *metrics.ExchangeStats
	// Spill enables the out-of-core spill tier for the per-round
	// exchange (must agree across ranks; the decision is collective).
	Spill *core.SpillOptions
	// Trace receives structured events when non-nil.
	Trace trace.Tracer
	// Span is the ambient span scope the exchange's spans nest under
	// (typically the driver-level "sort" root).
	Span trace.Scope
	// Skew accrues per-phase imbalance diagnostics when non-nil. Like
	// Spill, it must agree across ranks: the observation is collective.
	Skew *metrics.SkewStats
}

// DefaultOptions mirrors the published configuration.
func DefaultOptions() Options {
	return Options{K: 128, HistogramRounds: 3, Cores: 1}
}

func (o Options) cores() int {
	if o.Cores < 1 {
		return 1
	}
	return o.Cores
}

func (o Options) timer() *metrics.PhaseTimer {
	if o.Timer != nil {
		return o.Timer
	}
	return metrics.NewPhaseTimer()
}

// coreOpt maps the HykSort knobs onto the shared exchange's options.
// TauO is pinned to zero: every round takes the synchronous exchange,
// whose rank-ordered chunks keep the k-way merge deterministic.
func (o Options) coreOpt(tm *metrics.PhaseTimer) core.Options {
	c := core.DefaultOptions()
	c.Cores = o.Cores
	c.Mem = o.Mem
	c.Timer = tm
	c.StageBytes = o.StageBytes
	c.Exchange = o.Exchange
	c.Spill = o.Spill
	c.Trace = o.Trace
	c.Span = o.Span
	c.Skew = o.Skew
	c.TauO = 0
	return c
}

// Sort runs HykSort collectively: each rank contributes its local slice
// and receives its block of the globally sorted output (rank order =
// value order). The sort is not stable.
func Sort[T any](c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	if opt.K < 2 {
		opt.K = 2
	}
	tm := opt.timer()
	tm.Start(metrics.PhaseOther)
	defer tm.Stop()

	recSize := int64(cd.Size())
	// held tracks the bytes this call still holds against the gauge:
	// the input reservation, then — after each round's ExchangeSorted
	// settles the previous holding — the current working set. The defer
	// returns the remainder on every exit, so repeated sorts cannot
	// leak the (shared, long-lived) gauge.
	held := int64(len(data)) * recSize
	if err := opt.Mem.Reserve(held); err != nil {
		return nil, fmt.Errorf("hyksort: input buffer: %w", err)
	}
	defer func() { opt.Mem.Release(held) }()

	tm.Start(metrics.PhaseLocalSort)
	// HykSort is never stable, so integer-keyed codecs always qualify
	// for the LSD radix dispatch.
	if !radix.DispatchLocal(data, cd, cmp) {
		psort.ParallelSort(data, opt.cores(), false, cmp)
	}

	local := data
	cur := c
	for cur.Size() > 1 {
		var err error
		local, cur, err = round(cur, local, cd, cmp, recSize, opt, tm, &held)
		if err != nil {
			return nil, err
		}
	}
	return local, nil
}

// round performs one k-way split: select splitters, exchange buckets to
// their groups, and narrow the communicator to this rank's group. held
// is the caller's gauge ledger; the exchange settles it.
func round[T any](cur *comm.Comm, local []T, cd codec.Codec[T], cmp func(a, b T) int, recSize int64, opt Options, tm *metrics.PhaseTimer, held *int64) ([]T, *comm.Comm, error) {
	p := cur.Size()
	b := opt.K
	if b > p {
		b = p
	}

	// Histogram-based splitter selection (no duplicate awareness).
	tm.Start(metrics.PhasePivotSelection)
	splitters, err := pivots.HistogramSplitters(cur, local, b-1, opt.HistogramRounds, cd, cmp)
	if err != nil {
		return nil, nil, fmt.Errorf("hyksort: splitter selection: %w", err)
	}
	if len(splitters) == 0 {
		// Globally empty dataset: no rank contributed a candidate, and
		// every rank observes the same empty pool, so ending the
		// recursion by splitting into singleton worlds stays collective.
		sub, err := cur.Split(cur.Rank(), 0)
		if err != nil {
			return nil, nil, fmt.Errorf("hyksort: empty split: %w", err)
		}
		return local, sub, nil
	}
	if len(splitters) != b-1 {
		return nil, nil, fmt.Errorf("hyksort: selected %d splitters for %d groups", len(splitters), b)
	}

	// Bucket boundaries by plain upper_bound: every record equal to a
	// splitter goes below it, i.e. to a single group.
	bounds := make([]int, b+1)
	bounds[b] = len(local)
	for j, s := range splitters {
		bounds[j+1] = partition.UpperBound(local, s, cmp)
	}
	for j := 1; j <= b; j++ {
		if bounds[j] < bounds[j-1] {
			bounds[j] = bounds[j-1]
		}
	}

	// Rank layout: group j owns ranks [j*p/b, (j+1)*p/b). Each rank
	// scatters bucket j to one rank of group j, spreading senders
	// round-robin across the group's members. The targets are strictly
	// increasing in j, so the locally sorted data is already in
	// destination order and the buckets translate directly into the
	// per-destination bounds the shared exchange wants.
	groupOf := func(rank int) int { return rank * b / p }
	groupStart := func(j int) int {
		// First rank whose group is j.
		lo := (j*p + b - 1) / b
		for groupOf(lo) != j {
			lo++
		}
		return lo
	}
	myRank := cur.Rank()
	cnt := make([]int, p)
	for j := 0; j < b; j++ {
		gs := groupStart(j)
		ge := p
		if j < b-1 {
			ge = groupStart(j + 1)
		}
		cnt[gs+myRank%(ge-gs)] = bounds[j+1] - bounds[j]
	}
	db := make([]int, p+1)
	for dst := 0; dst < p; dst++ {
		db[dst+1] = db[dst] + cnt[dst]
	}

	merged, err := core.ExchangeSorted(cur, local, db, cd, cmp, opt.coreOpt(tm))
	if err != nil {
		*held = 0 // ExchangeSorted settled the ledger on failure
		return nil, nil, fmt.Errorf("hyksort: exchange: %w", err)
	}
	*held = int64(len(merged)) * recSize

	tm.Start(metrics.PhaseOther)
	sub, err := cur.Split(groupOf(myRank), myRank)
	if err != nil {
		return nil, nil, fmt.Errorf("hyksort: group split: %w", err)
	}
	return merged, sub, nil
}
