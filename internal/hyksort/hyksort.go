// Package hyksort implements HykSort (Sundar, Malhotra, Biros — ICS'13),
// the state-of-the-art baseline the paper compares against: a
// generalised hypercube quicksort that recursively splits the
// communicator into k groups using histogram-selected splitters and
// exchanges data in log_k(p) staged rounds, avoiding a single monolithic
// all-to-all.
//
// Like the original (when run without secondary sorting keys), this
// implementation partitions records by upper_bound on the splitters: all
// records equal to a splitter value land in one group. On heavily
// duplicated data the histogram refinement cannot separate equal keys,
// splitters collapse onto the popular values, and the data concentrates
// on few ranks — the load imbalance and out-of-memory failure the
// paper's Figs. 6c/8/10 and Tables 3/4 document.
package hyksort

import (
	"fmt"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/partition"
	"sdssort/internal/pivots"
	"sdssort/internal/psort"
	"sdssort/internal/radix"
)

const tagExchange = 3

// Options configures HykSort.
type Options struct {
	// K is the splitting arity per round; the HykSort paper found 128
	// optimal on their testbed and the SDS-Sort paper uses that value.
	K int
	// HistogramRounds is the number of refinement iterations in
	// splitter selection.
	HistogramRounds int
	// Cores bounds the goroutines used for local sorting.
	Cores int
	// Mem emulates the rank's memory budget (nil = unlimited).
	Mem *memlimit.Gauge
	// Timer accrues per-phase time when non-nil.
	Timer *metrics.PhaseTimer
}

// DefaultOptions mirrors the published configuration.
func DefaultOptions() Options {
	return Options{K: 128, HistogramRounds: 3, Cores: 1}
}

func (o Options) cores() int {
	if o.Cores < 1 {
		return 1
	}
	return o.Cores
}

func (o Options) timer() *metrics.PhaseTimer {
	if o.Timer != nil {
		return o.Timer
	}
	return metrics.NewPhaseTimer()
}

// Sort runs HykSort collectively: each rank contributes its local slice
// and receives its block of the globally sorted output (rank order =
// value order). The sort is not stable.
func Sort[T any](c *comm.Comm, data []T, cd codec.Codec[T], cmp func(a, b T) int, opt Options) ([]T, error) {
	if opt.K < 2 {
		opt.K = 2
	}
	tm := opt.timer()
	tm.Start(metrics.PhaseOther)
	defer tm.Stop()

	recSize := int64(cd.Size())
	if err := opt.Mem.Reserve(int64(len(data)) * recSize); err != nil {
		return nil, fmt.Errorf("hyksort: input buffer: %w", err)
	}
	tm.Start(metrics.PhaseLocalSort)
	// HykSort is never stable, so integer-keyed codecs always qualify
	// for the LSD radix dispatch.
	if !radix.DispatchLocal(data, cd, cmp) {
		psort.ParallelSort(data, opt.cores(), false, cmp)
	}

	local := data
	cur := c
	for cur.Size() > 1 {
		var err error
		local, cur, err = round(cur, local, cd, cmp, recSize, opt, tm)
		if err != nil {
			return nil, err
		}
	}
	return local, nil
}

// round performs one k-way split: select splitters, exchange buckets to
// their groups, merge, and narrow the communicator to this rank's group.
func round[T any](cur *comm.Comm, local []T, cd codec.Codec[T], cmp func(a, b T) int, recSize int64, opt Options, tm *metrics.PhaseTimer) ([]T, *comm.Comm, error) {
	p := cur.Size()
	b := opt.K
	if b > p {
		b = p
	}

	// Histogram-based splitter selection (no duplicate awareness).
	tm.Start(metrics.PhasePivotSelection)
	splitters, err := pivots.HistogramSplitters(cur, local, b-1, opt.HistogramRounds, cd, cmp)
	if err != nil {
		return nil, nil, fmt.Errorf("hyksort: splitter selection: %w", err)
	}
	if len(splitters) != b-1 {
		return nil, nil, fmt.Errorf("hyksort: selected %d splitters for %d groups", len(splitters), b)
	}

	// Bucket boundaries by plain upper_bound: every record equal to a
	// splitter goes below it, i.e. to a single group.
	bounds := make([]int, b+1)
	bounds[b] = len(local)
	for j, s := range splitters {
		bounds[j+1] = partition.UpperBound(local, s, cmp)
	}
	for j := 1; j <= b; j++ {
		if bounds[j] < bounds[j-1] {
			bounds[j] = bounds[j-1]
		}
	}

	// Rank layout: group j owns ranks [j*p/b, (j+1)*p/b). Each rank
	// scatters bucket j to one rank of group j, spreading senders
	// round-robin across the group's members.
	groupOf := func(rank int) int { return rank * b / p }
	groupStart := func(j int) int {
		// First rank whose group is j.
		lo := (j*p + b - 1) / b
		for groupOf(lo) != j {
			lo++
		}
		return lo
	}
	parts := make([][]byte, p)
	myRank := cur.Rank()
	for j := 0; j < b; j++ {
		if bounds[j+1] == bounds[j] {
			continue
		}
		gs := groupStart(j)
		var ge int
		if j == b-1 {
			ge = p
		} else {
			ge = groupStart(j + 1)
		}
		target := gs + myRank%(ge-gs)
		seg := local[bounds[j]:bounds[j+1]]
		if parts[target] == nil {
			// Zero-copy-capable codecs scatter the bucket straight
			// from the record slab. The view has no spare capacity,
			// so a second bucket for the same target below appends
			// into a fresh buffer rather than the slab.
			if wire, ok := codec.View(cd, seg); ok {
				parts[target] = wire
				continue
			}
		}
		parts[target] = codec.EncodeSlice(cd, parts[target], seg)
	}

	tm.Start(metrics.PhaseExchange)
	recv, err := cur.Alltoall(parts)
	if err != nil {
		return nil, nil, fmt.Errorf("hyksort: exchange: %w", err)
	}

	// Budget the received volume before materialising it — the spot
	// where a collapsed split dies of OOM.
	var incoming int64
	for src, buf := range recv {
		if src == myRank {
			continue
		}
		incoming += int64(len(buf))
	}
	if err := opt.Mem.Reserve(incoming); err != nil {
		return nil, nil, fmt.Errorf("hyksort: receive buffer: %w", err)
	}

	tm.Start(metrics.PhaseLocalOrdering)
	oldBytes := int64(len(local)) * recSize
	chunks := make([][]T, 0, p)
	for src := 0; src < p; src++ {
		if len(recv[src]) == 0 {
			continue
		}
		chunk, err := codec.DecodeSlice(cd, recv[src])
		if err != nil {
			return nil, nil, fmt.Errorf("hyksort: decode from rank %d: %w", src, err)
		}
		chunks = append(chunks, chunk)
	}
	merged := psort.KWayMerge(chunks, cmp)
	opt.Mem.Release(oldBytes)

	tm.Start(metrics.PhaseOther)
	sub, err := cur.Split(groupOf(myRank), myRank)
	if err != nil {
		return nil, nil, fmt.Errorf("hyksort: group split: %w", err)
	}
	return merged, sub, nil
}
