package hyksort

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/memlimit"
	"sdssort/internal/workload"
)

var f64 = codec.Float64{}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func runHyk(t *testing.T, p int, in [][]float64, opt Options) ([][]float64, error) {
	t.Helper()
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	return cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]float64, error) {
		local := append([]float64(nil), in[c.Rank()]...)
		return Sort(c, local, f64, cmpF, opt)
	})
}

func checkGloballySorted(t *testing.T, in, out [][]float64) {
	t.Helper()
	var flatIn, flatOut []float64
	for _, part := range in {
		flatIn = append(flatIn, part...)
	}
	for _, part := range out {
		flatOut = append(flatOut, part...)
	}
	if len(flatIn) != len(flatOut) {
		t.Fatalf("count changed: %d -> %d", len(flatIn), len(flatOut))
	}
	if !slices.IsSorted(flatOut) {
		t.Fatal("output not globally sorted")
	}
	slices.Sort(flatIn)
	if !slices.Equal(flatIn, flatOut) {
		t.Fatal("output is not a permutation of the input")
	}
}

func uniformIn(seed int64, p, perRank int) [][]float64 {
	in := make([][]float64, p)
	for r := range in {
		in[r] = workload.Uniform(seed+int64(r), perRank)
	}
	return in
}

func TestHykSortUniform(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		in := uniformIn(1, p, 400)
		out, err := runHyk(t, p, in, DefaultOptions())
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkGloballySorted(t, in, out)
	}
}

func TestHykSortSmallK(t *testing.T) {
	// K < p forces multiple rounds (the hypercube recursion).
	opt := DefaultOptions()
	opt.K = 2
	in := uniformIn(2, 8, 300)
	out, err := runHyk(t, 8, in, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, in, out)

	opt.K = 3
	out, err = runHyk(t, 8, in, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, in, out)
}

func TestHykSortMildZipfStillSorts(t *testing.T) {
	// Low duplication (δ below ~1%) is the regime where the paper
	// says HykSort still works.
	in := make([][]float64, 8)
	for r := range in {
		in[r] = workload.ZipfKeys(int64(r), 400, 0.5, workload.DefaultZipfUniverse)
	}
	out, err := runHyk(t, 8, in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, in, out)
}

func TestHykSortSkewImbalance(t *testing.T) {
	// Heavy duplication: the final loads must be far from balanced —
	// this is the defect SDS-Sort fixes. 60% of all records share one
	// key.
	const p, perRank = 8, 1000
	rng := rand.New(rand.NewSource(3))
	in := make([][]float64, p)
	for r := range in {
		rows := make([]float64, perRank)
		for i := range rows {
			if rng.Float64() < 0.6 {
				rows[i] = 5
			} else {
				rows[i] = rng.Float64() * 10
			}
		}
		in[r] = rows
	}
	out, err := runHyk(t, p, in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, in, out)
	maxLoad := 0
	for _, part := range out {
		if len(part) > maxLoad {
			maxLoad = len(part)
		}
	}
	fair := perRank // N/p
	if maxLoad < 3*fair {
		t.Errorf("expected heavy imbalance on 60%%-duplicated data, max load %d vs fair %d", maxLoad, fair)
	}
}

func TestHykSortSkewOOM(t *testing.T) {
	// With a realistic per-rank budget the skew-collapsed rank dies of
	// OOM, the paper's Fig. 8/10 behaviour.
	const p, perRank = 8, 1000
	recBytes := int64(8)
	budget := memlimit.FairShareBudget(int64(p*perRank)*recBytes, p, 4)
	rng := rand.New(rand.NewSource(4))
	in := make([][]float64, p)
	for r := range in {
		rows := make([]float64, perRank)
		for i := range rows {
			if rng.Float64() < 0.8 {
				rows[i] = 5
			} else {
				rows[i] = rng.Float64() * 10
			}
		}
		in[r] = rows
	}
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		opt := DefaultOptions()
		opt.Mem = memlimit.New(budget)
		local := append([]float64(nil), in[c.Rank()]...)
		_, err := Sort(c, local, f64, cmpF, opt)
		return err
	})
	if err == nil {
		t.Fatal("expected an OOM failure on heavily duplicated data")
	}
	if !errors.Is(err, memlimit.ErrOutOfMemory) {
		t.Fatalf("got %v, want ErrOutOfMemory", err)
	}
}

func TestHykSortUniformWithinBudget(t *testing.T) {
	// The same budget is comfortable on uniform data: no OOM.
	const p, perRank = 8, 1000
	budget := memlimit.FairShareBudget(int64(p*perRank)*8, p, 4)
	in := uniformIn(5, p, perRank)
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	err := cluster.Run(topo, func(c *comm.Comm) error {
		opt := DefaultOptions()
		opt.Mem = memlimit.New(budget)
		local := append([]float64(nil), in[c.Rank()]...)
		_, err := Sort(c, local, f64, cmpF, opt)
		return err
	})
	if err != nil {
		t.Fatalf("uniform data should fit the budget: %v", err)
	}
}

func TestHykSortEmptyAndTiny(t *testing.T) {
	in := [][]float64{{}, {1}, {}, {0.5, 0.2}}
	out, err := runHyk(t, 4, in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, in, out)
}

func TestHykSortStagedRounds(t *testing.T) {
	// p=16 with K=4 forces exactly two k-way rounds (16 -> 4 -> 1);
	// the hypercube recursion must still deliver a global sort.
	opt := DefaultOptions()
	opt.K = 4
	in := uniformIn(6, 16, 250)
	out, err := runHyk(t, 16, in, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, in, out)
}
