package radix

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
)

var u64 = codec.Uint64{}

func ident(v uint64) uint64 { return v }

func TestLSDSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 100, 10000} {
		data := make([]uint64, n)
		for i := range data {
			data[i] = rng.Uint64()
		}
		want := append([]uint64(nil), data...)
		slices.Sort(want)
		LSDSort(data, ident)
		if !slices.Equal(data, want) {
			t.Fatalf("n=%d mismatch", n)
		}
	}
}

func TestLSDSortSmallUniverse(t *testing.T) {
	// Exercises the skip-pass fast path (most bytes identical).
	rng := rand.New(rand.NewSource(2))
	data := make([]uint64, 5000)
	for i := range data {
		data[i] = uint64(rng.Intn(7))
	}
	want := append([]uint64(nil), data...)
	slices.Sort(want)
	LSDSort(data, ident)
	if !slices.Equal(data, want) {
		t.Fatal("mismatch")
	}
}

func TestLSDSortProperty(t *testing.T) {
	f := func(data []uint64) bool {
		want := append([]uint64(nil), data...)
		slices.Sort(want)
		cp := append([]uint64(nil), data...)
		LSDSort(cp, ident)
		return slices.Equal(cp, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64KeyOrderPreserving(t *testing.T) {
	vals := []float64{-1e300, -3.5, -0, 0, 1e-10, 2, 7.25, 1e300}
	for i := 1; i < len(vals); i++ {
		if !(Float64Key(vals[i-1]) <= Float64Key(vals[i])) {
			t.Fatalf("order broken between %v and %v", vals[i-1], vals[i])
		}
	}
	f := func(a, b float64) bool {
		if a != a || b != b { // skip NaN
			return true
		}
		if a < b {
			return Float64Key(a) < Float64Key(b)
		}
		if a > b {
			return Float64Key(a) > Float64Key(b)
		}
		return Float64Key(a) == Float64Key(b) || (a == 0 && b == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelRadixSort(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(p)))
		in := make([][]uint64, p)
		for r := range in {
			rows := make([]uint64, 500)
			for i := range rows {
				rows[i] = rng.Uint64()
			}
			in[r] = rows
		}
		topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
		out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]uint64, error) {
			local := append([]uint64(nil), in[c.Rank()]...)
			return Sort(c, local, u64, ident, Options{})
		})
		if err != nil {
			t.Fatal(err)
		}
		var flatIn, flatOut []uint64
		for _, part := range in {
			flatIn = append(flatIn, part...)
		}
		for _, part := range out {
			flatOut = append(flatOut, part...)
		}
		if !slices.IsSorted(flatOut) {
			t.Fatalf("p=%d: not sorted", p)
		}
		slices.Sort(flatIn)
		if !slices.Equal(flatIn, flatOut) {
			t.Fatalf("p=%d: not a permutation", p)
		}
	}
}

func TestParallelRadixClusteredKeys(t *testing.T) {
	// Keys concentrated in a narrow band of the top-bit space: the
	// histogram cut must still produce a legal partition.
	const p = 4
	rng := rand.New(rand.NewSource(9))
	in := make([][]uint64, p)
	for r := range in {
		rows := make([]uint64, 400)
		for i := range rows {
			rows[i] = uint64(1)<<52 + uint64(rng.Intn(1000))
		}
		in[r] = rows
	}
	topo := cluster.Topology{Nodes: p, CoresPerNode: 1}
	out, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]uint64, error) {
		local := append([]uint64(nil), in[c.Rank()]...)
		return Sort(c, local, u64, ident, Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	var flat []uint64
	for _, part := range out {
		flat = append(flat, part...)
	}
	if !slices.IsSorted(flat) {
		t.Fatal("not sorted")
	}
	if len(flat) != p*400 {
		t.Fatalf("lost records: %d", len(flat))
	}
}
