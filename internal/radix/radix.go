// Package radix implements a parallel radix sort for records with
// unsigned-integer sort keys — one of the non-sampling related-work
// algorithms the paper positions against (§5). Distribution: a global
// histogram over the top bits assigns contiguous bucket ranges to ranks
// so the loads balance (for value distributions that spread across the
// bucket space); each rank then LSD-radix-sorts its received range.
// Like all radix sorts it needs an integer key extraction and cannot
// sort by arbitrary comparators — exactly the flexibility gap SDS-Sort
// fills.
package radix

import (
	"fmt"
	"math"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/metrics"
	"sdssort/internal/psort"
)

// topBits is the width of the distribution histogram. Floating-point
// keys concentrate in few exponent values, so the histogram needs to see
// mantissa bits beyond sign+exponent (12 bits) to split the [0.5, 1)
// mass across ranks; 14 bits gives 2 mantissa bits while keeping the
// all-gathered histogram at 128KB per rank.
const topBits = 14

const numBuckets = 1 << topBits

// Options configures the parallel radix sort.
type Options struct {
	// Timer accrues per-phase time when non-nil.
	Timer *metrics.PhaseTimer
}

func (o Options) timer() *metrics.PhaseTimer {
	if o.Timer != nil {
		return o.Timer
	}
	return metrics.NewPhaseTimer()
}

// Sort sorts records distributed across the communicator by the uint64
// key extracted by key(). Rank order of the output blocks follows key
// order. The sort is stable with respect to the key (LSD radix).
func Sort[T any](c *comm.Comm, data []T, cd codec.Codec[T], key func(T) uint64, opt Options) ([]T, error) {
	tm := opt.timer()
	tm.Start(metrics.PhaseOther)
	defer tm.Stop()
	p := c.Size()
	if p == 1 {
		LSDSort(data, key)
		return data, nil
	}

	// Global histogram over the top bits.
	tm.Start(metrics.PhasePivotSelection)
	local := make([]int64, numBuckets)
	for _, rec := range data {
		local[key(rec)>>(64-topBits)]++
	}
	parts, err := c.Allgather(comm.EncodeInt64s(local))
	if err != nil {
		return nil, fmt.Errorf("radix: histogram gather: %w", err)
	}
	global := make([]int64, numBuckets)
	var total int64
	for r, buf := range parts {
		vals, err := comm.DecodeInt64s(buf)
		if err != nil || len(vals) != numBuckets {
			return nil, fmt.Errorf("radix: bad histogram from rank %d", r)
		}
		for i, v := range vals {
			global[i] += v
			total += v
		}
	}

	// Assign contiguous bucket ranges to ranks, balancing record
	// counts: rank j owns buckets [cut[j], cut[j+1]).
	cut := make([]int, p+1)
	cut[p] = numBuckets
	var running int64
	nextRank := 1
	for b := 0; b < numBuckets && nextRank < p; b++ {
		running += global[b]
		for nextRank < p && running >= int64(nextRank)*total/int64(p) {
			cut[nextRank] = b + 1
			nextRank++
		}
	}
	for j := 1; j < p; j++ {
		if cut[j] < cut[j-1] {
			cut[j] = cut[j-1]
		}
	}

	// Route each record to its bucket range's owner.
	tm.Start(metrics.PhaseExchange)
	owner := make([]int, numBuckets)
	for j := 0; j < p; j++ {
		for b := cut[j]; b < cut[j+1]; b++ {
			owner[b] = j
		}
	}
	outParts := make([][]T, p)
	for _, rec := range data {
		dst := owner[key(rec)>>(64-topBits)]
		outParts[dst] = append(outParts[dst], rec)
	}
	sendParts := make([][]byte, p)
	for dst := 0; dst < p; dst++ {
		// Zero-copy-capable codecs scatter straight from the bucket
		// slab; the buckets are not touched again until the exchange
		// returns, so aliasing the storage is safe.
		if wire, ok := codec.View(cd, outParts[dst]); ok {
			sendParts[dst] = wire
			continue
		}
		sendParts[dst] = codec.EncodeSlice(cd, nil, outParts[dst])
	}
	recv, err := c.Alltoall(sendParts)
	if err != nil {
		return nil, fmt.Errorf("radix: exchange: %w", err)
	}

	tm.Start(metrics.PhaseLocalOrdering)
	var mine []T
	for src := 0; src < p; src++ {
		mine, err = codec.DecodeAppend(cd, mine, recv[src])
		if err != nil {
			return nil, fmt.Errorf("radix: decode from rank %d: %w", src, err)
		}
	}
	LSDSort(mine, key)
	return mine, nil
}

// DispatchLocal sorts data in place with the LSD radix pass when cd
// extracts an integer sort key (codec.Uint64Keyer) and the result
// agrees with the caller's comparator, reporting whether it did. The
// agreement sweep is one O(n) comparison pass — cheap next to the sort
// it replaces — and is what makes the dispatch safe against a
// comparator that disagrees with the codec's canonical key order: on
// disagreement the caller falls back to its comparison sort (data is
// left permuted but intact). Stability note: the LSD pass is stable
// with respect to the full key, so callers that need comparator-level
// stability must not dispatch unless key equality implies comparator
// equality; core gates the dispatch to non-stable sorts for exactly
// that reason.
func DispatchLocal[T any](data []T, cd codec.Codec[T], cmp func(a, b T) int) bool {
	key, ok := codec.Uint64KeyOf(cd)
	if !ok {
		return false
	}
	LSDSort(data, key)
	return psort.IsSorted(data, cmp)
}

// LSDSort sorts data in place by 8 passes of byte-wise counting sort
// over the uint64 key, least significant byte first.
func LSDSort[T any](data []T, key func(T) uint64) {
	n := len(data)
	if n < 2 {
		return
	}
	buf := make([]T, n)
	src, dst := data, buf
	for pass := 0; pass < 8; pass++ {
		shift := uint(8 * pass)
		var counts [256]int
		for _, rec := range src {
			counts[(key(rec)>>shift)&0xff]++
		}
		if counts[int((key(src[0])>>shift)&0xff)] == n {
			// All records share this byte; skip the pass.
			continue
		}
		pos := 0
		var starts [256]int
		for b := 0; b < 256; b++ {
			starts[b] = pos
			pos += counts[b]
		}
		for _, rec := range src {
			b := (key(rec) >> shift) & 0xff
			dst[starts[b]] = rec
			starts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &data[0] {
		copy(data, src)
	}
}

// Float64Key maps a float64 to a uint64 whose unsigned order matches the
// float order (for non-NaN values), enabling radix sorting of float
// keys.
func Float64Key(f float64) uint64 {
	const signBit = 1 << 63
	bits := floatBits(f)
	if bits&signBit != 0 {
		return ^bits
	}
	return bits | signBit
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
