# Convenience targets; everything is plain `go` underneath.

# bash + pipefail so a `go test | tee` pipeline fails when go test
# fails, not with tee's exit status — the bug that let a broken
# benchmark lane stay green.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go
FAULTNET_SEED ?= 1

# Build identity: the stamped version lands in -version output and in
# the sds_build_info metric. Defaults to git describe (falling back to
# the short hash), overridable for release builds: make build VERSION=v1.2.3
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -X sdssort/internal/buildinfo.Version=$(VERSION)

# The hot-path benchmark lane the perf ratchet diffs: pinned parallelism
# and a fixed -benchtime/-count so runs are comparable across machines
# and days. -count=5 gives benchdiff five samples per benchmark to take
# the median of; 1s per sample keeps the cluster benchmarks' medians
# within a few percent run to run (300ms was not enough).
BENCH_PROCS    ?= 4
BENCH_TIME     ?= 1s
BENCH_COUNT    ?= 5
BENCH_HOT      := ^(BenchmarkExchange|BenchmarkLocalSortIntKeys|BenchmarkMergeKernel|BenchmarkSpillMerge|BenchmarkAlgoCompare)$$
BENCH_HOT_PKGS := ./internal/core/ ./internal/psort/ ./internal/algo/

.PHONY: all build install test race vet lint bench bench-json bench-json-all bench-baseline bench-diff algo-matrix soak soak-engine soak-shrink soak-spill telemetry-smoke trace-smoke experiments experiments-quick fuzz clean

all: build test

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

# Install the binaries with the version stamped (build only compiles;
# this drops sdssort, sdsnode, sdstrace... into GOBIN).
install:
	$(GO) install -ldflags '$(LDFLAGS)' ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Mirrors the CI lint job; requires golangci-lint on PATH.
lint:
	golangci-lint run

bench:
	$(GO) test -bench=. -benchmem ./...

# The ratcheted hot-path benchmarks in JSON form, as the CI bench-smoke
# job runs them: pinned GOMAXPROCS, fixed -benchtime, -count repeats.
# BenchmarkExchange covers the staged/monolithic × zero-copy/marshal
# exchange grid (with peak-staging-bytes), BenchmarkLocalSortIntKeys the
# radix dispatch, BenchmarkMergeKernel the branchless merge,
# BenchmarkSpillMerge the out-of-core exchange against its in-memory
# twin (with spill-bytes/op), and BenchmarkAlgoCompare the end-to-end
# driver race (sds/hss/ams/hyksort) on Zipf keys.
bench-json:
	GOMAXPROCS=$(BENCH_PROCS) $(GO) test -run xxx -json \
		-bench '$(BENCH_HOT)' -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) \
		$(BENCH_HOT_PKGS) | tee BENCH_ci.json

# Single-iteration sweep over every benchmark in the tree (including
# BenchmarkEngineWarmFabric and its spawns/job metric) — a smoke pass
# that everything still runs, not a timing source.
bench-json-all:
	$(GO) test -bench=. -benchtime=1x -run xxx -json ./... | tee BENCH_all.json

# Refresh the committed baseline the perf ratchet falls back to when no
# CI artifact from main is reachable. Run on a quiet machine, then
# commit BENCH_baseline.json.
bench-baseline:
	GOMAXPROCS=$(BENCH_PROCS) $(GO) test -run xxx -json \
		-bench '$(BENCH_HOT)' -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) \
		$(BENCH_HOT_PKGS) | tee BENCH_baseline.json

# Diff the local hot-path run against the committed baseline; fails on
# a >15% ns/op or peak-staging-bytes regression.
bench-diff: bench-json
	$(GO) run ./cmd/benchdiff -old BENCH_baseline.json -new BENCH_ci.json

# The cross-driver algorithm matrix: every registered driver must emit
# byte-identical output across the workload grid on both transports,
# and -algo auto must resolve as the decision rule documents. Mirrors
# the CI algo-matrix job.
algo-matrix:
	$(GO) test -race -run 'TestDriverEquivalence|TestAutoSelects|TestAutoSpillPressure' -count=1 -timeout 10m ./internal/algo/

# Fault-injection soak: repeat the Fault|Retry|Reconnect|Recovery test
# families under the race detector. Vary the schedule with
# FAULTNET_SEED=n — the seed also picks the staged exchange's
# StageBytes, so kills land on different chunk boundaries.
soak:
	FAULTNET_SEED=$(FAULTNET_SEED) $(GO) test -race -run 'Fault|Retry|Reconnect|Recovery' -count=3 -timeout 15m ./internal/...

# Engine soak: a job stream over one warm fabric with a mid-stream
# fault-killed job; later jobs must still complete and the shared
# memory gauge must drain between jobs. Seeded like `soak`.
soak-engine:
	FAULTNET_SEED=$(FAULTNET_SEED) $(GO) test -race -run 'EngineSoak' -count=3 -timeout 15m ./internal/engine/

# Shrink soak: the degraded-mode recovery paths — in-proc supervised
# shrink and cascade (internal/core), engine jobs shrinking onto
# survivors, and the multi-process sdsnode e2e that hard-kills a rank
# mid-exchange. The seed moves the kill rank and fault schedule.
soak-shrink:
	FAULTNET_SEED=$(FAULTNET_SEED) $(GO) test -race -run 'Shrink' -count=3 -timeout 15m ./internal/core/ ./internal/engine/
	FAULTNET_SEED=$(FAULTNET_SEED) $(GO) test -race -run 'DistributedShrink' -count=1 -timeout 15m ./cmd/sdsnode/

# Spill soak: the out-of-core tier under fault injection and crashes —
# the spill property grid, the budget trigger, the crash-mid-spill
# supervised resume and the faultnet soak, repeated under the race
# detector. FAULTNET_SEED=n varies the fault schedule, plus the
# multi-process spilled e2e once.
soak-spill:
	FAULTNET_SEED=$(FAULTNET_SEED) $(GO) test -race -run 'Spill' -count=3 -timeout 15m ./internal/core/
	FAULTNET_SEED=$(FAULTNET_SEED) $(GO) test -race -count=3 -timeout 15m ./internal/extsort/
	FAULTNET_SEED=$(FAULTNET_SEED) $(GO) test -race -run 'DistributedSpilledSort|CLISpilledSort' -count=1 -timeout 15m ./cmd/sdsnode/ ./cmd/sdssort/

# Telemetry smoke: boot a real 2-process sdsnode world in -serve mode
# and curl /healthz and /metrics mid-soak, requiring the local series,
# the fabric-wide aggregated totals and a clean drain. The Go-level
# twins (scrape-under-load, the e2e serve test) run under `test`.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# Trace smoke: boot a real 2-process sdsnode world with span tracing
# and telemetry on, assert /debug/spans returns a well-formed span
# tree, and validate the clock-aligned chrome export end to end.
trace-smoke:
	sh scripts/trace_smoke.sh

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/sdsbench -exp all

experiments-quick:
	$(GO) run ./cmd/sdsbench -exp all -quick

# Short fuzzing pass over the sort, partition and checkpoint-manifest
# invariants.
fuzz:
	$(GO) test ./internal/psort -fuzz FuzzSort -fuzztime 30s -run xxx
	$(GO) test ./internal/psort -fuzz FuzzStableSort -fuzztime 30s -run xxx
	$(GO) test ./internal/partition -fuzz FuzzFastPartition -fuzztime 30s -run xxx
	$(GO) test ./internal/partition -fuzz FuzzStablePartition -fuzztime 30s -run xxx
	$(GO) test ./internal/checkpoint -fuzz FuzzManifest -fuzztime 30s -run xxx

# BENCH_baseline.json is a committed artifact, not a build product —
# clean leaves it alone.
clean:
	$(GO) clean ./...
	rm -f BENCH_ci.json BENCH_all.json
