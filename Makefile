# Convenience targets; everything is plain `go` underneath.

GO ?= go
FAULTNET_SEED ?= 1

.PHONY: all build test race vet lint bench bench-json soak soak-engine telemetry-smoke experiments experiments-quick fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Mirrors the CI lint job; requires golangci-lint on PATH.
lint:
	golangci-lint run

bench:
	$(GO) test -bench=. -benchmem ./...

# Single-iteration benchmark pass in JSON form, as the CI bench-smoke
# job publishes it. BenchmarkExchange compares the staged and
# monolithic all-to-all and reports peak-staging-bytes;
# BenchmarkEngineWarmFabric compares jobs on a persistent engine with
# one-shot launches and reports spawns/job.
bench-json:
	$(GO) test -bench=. -benchtime=1x -run xxx -json ./... | tee BENCH_ci.json

# Fault-injection soak: repeat the Fault|Retry|Reconnect|Recovery test
# families under the race detector. Vary the schedule with
# FAULTNET_SEED=n — the seed also picks the staged exchange's
# StageBytes, so kills land on different chunk boundaries.
soak:
	FAULTNET_SEED=$(FAULTNET_SEED) $(GO) test -race -run 'Fault|Retry|Reconnect|Recovery' -count=3 -timeout 15m ./internal/...

# Engine soak: a job stream over one warm fabric with a mid-stream
# fault-killed job; later jobs must still complete and the shared
# memory gauge must drain between jobs. Seeded like `soak`.
soak-engine:
	FAULTNET_SEED=$(FAULTNET_SEED) $(GO) test -race -run 'EngineSoak' -count=3 -timeout 15m ./internal/engine/

# Telemetry smoke: boot a real 2-process sdsnode world in -serve mode
# and curl /healthz and /metrics mid-soak, requiring the local series,
# the fabric-wide aggregated totals and a clean drain. The Go-level
# twins (scrape-under-load, the e2e serve test) run under `test`.
telemetry-smoke:
	sh scripts/telemetry_smoke.sh

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/sdsbench -exp all

experiments-quick:
	$(GO) run ./cmd/sdsbench -exp all -quick

# Short fuzzing pass over the sort, partition and checkpoint-manifest
# invariants.
fuzz:
	$(GO) test ./internal/psort -fuzz FuzzSort -fuzztime 30s -run xxx
	$(GO) test ./internal/psort -fuzz FuzzStableSort -fuzztime 30s -run xxx
	$(GO) test ./internal/partition -fuzz FuzzFastPartition -fuzztime 30s -run xxx
	$(GO) test ./internal/partition -fuzz FuzzStablePartition -fuzztime 30s -run xxx
	$(GO) test ./internal/checkpoint -fuzz FuzzManifest -fuzztime 30s -run xxx

clean:
	$(GO) clean ./...
	rm -f BENCH_ci.json
