# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race vet bench experiments experiments-quick fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/sdsbench -exp all

experiments-quick:
	$(GO) run ./cmd/sdsbench -exp all -quick

# Short fuzzing pass over the sort and partition invariants.
fuzz:
	$(GO) test ./internal/psort -fuzz FuzzSort -fuzztime 30s -run xxx
	$(GO) test ./internal/psort -fuzz FuzzStableSort -fuzztime 30s -run xxx
	$(GO) test ./internal/partition -fuzz FuzzFastPartition -fuzztime 30s -run xxx
	$(GO) test ./internal/partition -fuzz FuzzStablePartition -fuzztime 30s -run xxx

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
