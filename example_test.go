package sdssort_test

import (
	"fmt"
	"log"

	"sdssort"
)

// ExampleSorter_SortLocal sorts per-rank shards on an in-process cluster
// and prints the globally sorted concatenation.
func ExampleSorter_SortLocal() {
	topo := sdssort.Topology{Nodes: 2, CoresPerNode: 2}
	parts := [][]float64{
		{9, 1}, {8, 2}, {7, 3}, {6, 4},
	}
	sorter := sdssort.NewSorter[float64](sdssort.Float64Codec(), sdssort.Compare[float64])
	sorted, err := sorter.SortLocal(topo, parts)
	if err != nil {
		log.Fatal(err)
	}
	var flat []float64
	for _, part := range sorted {
		flat = append(flat, part...)
	}
	fmt.Println(flat)
	// Output: [1 2 3 4 6 7 8 9]
}

// ExampleStable shows stable sorting of duplicate keys without any
// secondary sorting key: payloads emerge in input order.
func ExampleStable() {
	cd := obsCodec{}
	cmp := func(a, b obsRecord) int { return sdssort.Compare(a.Score, b.Score) }

	topo := sdssort.Topology{Nodes: 2, CoresPerNode: 1}
	parts := [][]obsRecord{
		{{1, 'a'}, {2, 'b'}, {1, 'c'}}, // rank 0
		{{1, 'd'}, {2, 'e'}},           // rank 1
	}
	sorter := sdssort.NewSorter[obsRecord](cd, cmp, sdssort.Stable())
	sorted, err := sorter.SortLocal(topo, parts)
	if err != nil {
		log.Fatal(err)
	}
	for _, part := range sorted {
		for _, o := range part {
			fmt.Printf("%.0f%c ", o.Score, o.ID)
		}
	}
	fmt.Println()
	// Output: 1a 1c 1d 2b 2e
}

// ExampleSorter_Verify runs a sort collectively and verifies the result
// with the cheap distributed check.
func ExampleSorter_Verify() {
	topo := sdssort.Topology{Nodes: 2, CoresPerNode: 1}
	sorter := sdssort.NewSorter[float64](sdssort.Float64Codec(), sdssort.Compare[float64])
	err := sdssort.RunLocal(topo, func(c *sdssort.Comm) error {
		data := []float64{float64(2 - c.Rank()), float64(10 - c.Rank())}
		out, err := sorter.Sort(c, data)
		if err != nil {
			return err
		}
		return sorter.Verify(c, out)
	})
	fmt.Println(err == nil)
	// Output: true
}

// obsRecord is the example's observation record: a float score key and
// a one-byte payload the comparator never sees.
type obsRecord struct {
	Score float64
	ID    byte
}

// obsCodec is the 9-byte wire format for obsRecord.
type obsCodec struct{}

func (obsCodec) Size() int { return 9 }

func (obsCodec) Marshal(dst []byte, r obsRecord) {
	sdssort.Float64Codec().Marshal(dst, r.Score)
	dst[8] = r.ID
}

func (obsCodec) Unmarshal(src []byte) obsRecord {
	return obsRecord{Score: sdssort.Float64Codec().Unmarshal(src), ID: src[8]}
}
