// Command sdsgen generates the evaluation workloads as binary record
// files consumable by cmd/sdssort.
//
// Usage:
//
//	sdsgen -kind uniform  -n 1000000 -o uniform.f64
//	sdsgen -kind zipf     -n 1000000 -alpha 1.4 -o zipf.f64
//	sdsgen -kind ptf      -n 1000000 -o ptf.rec
//	sdsgen -kind cosmo    -n 1000000 -o cosmo.rec
//	sdsgen -kind ksorted  -n 1000000 -blocks 16 -o ksorted.f64
//	sdsgen -kind zipf-hot -n 1000000 -o hot.f64
//
// Any workload preset name (see internal/workload presets) is also a
// valid -kind, so the skew/duplicate datasets the algorithm-comparison
// experiments use are reproducible byte-for-byte from the CLI.
//
// float64 workloads are written as little-endian 8-byte keys; ptf and
// cosmo use the fixed-width record formats of the library's codecs.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"sdssort/internal/buildinfo"
	"sdssort/internal/codec"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdsgen: ")
	var (
		kind   = flag.String("kind", "uniform", "uniform | zipf | ksorted | ptf | cosmo | preset ("+strings.Join(workload.PresetNames(), " | ")+")")
		n      = flag.Int("n", 1_000_000, "number of records")
		alpha  = flag.Float64("alpha", 1.4, "Zipf exponent (zipf only)")
		univ   = flag.Int("universe", workload.DefaultZipfUniverse, "Zipf value universe (zipf only)")
		blocks = flag.Int("blocks", 16, "sorted blocks (ksorted only)")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (required)")
		ver    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *ver {
		fmt.Println(buildinfo.String("sdsgen"))
		return
	}
	if *out == "" {
		log.Fatal("-o output file is required")
	}
	var written int64
	switch *kind {
	case "uniform", "zipf", "ksorted":
		var keys []float64
		switch *kind {
		case "uniform":
			keys = workload.Uniform(*seed, *n)
		case "zipf":
			keys = workload.ZipfKeys(*seed, *n, *alpha, *univ)
		case "ksorted":
			keys = workload.KSorted(*seed, *n, *blocks)
		}
		if err := recordio.WriteFile(*out, codec.Float64{}, keys); err != nil {
			log.Fatal(err)
		}
		written = int64(len(keys)) * 8
		s := workload.Summarize(keys)
		fmt.Printf("δ (duplication ratio) = %.4f%%; %d distinct values in [%.4g, %.4g]; %d runs\n",
			s.DupRatio*100, s.Distinct, s.Min, s.Max, s.Runs)
	case "ptf":
		recs := workload.PTF(*seed, *n)
		if err := recordio.WriteFile(*out, codec.PTFCodec{}, recs); err != nil {
			log.Fatal(err)
		}
		written = int64(len(recs)) * 16
	case "cosmo":
		recs := workload.Cosmology(*seed, *n)
		if err := recordio.WriteFile(*out, codec.ParticleCodec{}, recs); err != nil {
			log.Fatal(err)
		}
		written = int64(len(recs)) * 32
	default:
		pre, ok := workload.LookupPreset(*kind)
		if !ok {
			log.Fatalf("unknown kind %q (presets: %s)", *kind, strings.Join(workload.PresetNames(), " | "))
		}
		keys := pre.Gen(*seed, *n)
		if err := recordio.WriteFile(*out, codec.Float64{}, keys); err != nil {
			log.Fatal(err)
		}
		written = int64(len(keys)) * 8
		s := workload.Summarize(keys)
		fmt.Printf("δ (duplication ratio) = %.4f%%; %d distinct values in [%.4g, %.4g]; %d runs\n",
			s.DupRatio*100, s.Distinct, s.Min, s.Max, s.Runs)
	}
	fmt.Printf("wrote %d records (%d bytes) to %s\n", *n, written, *out)
}
