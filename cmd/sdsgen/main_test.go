package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

func TestMain(m *testing.M) {
	if os.Getenv("SDSGEN_CLI_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SDSGEN_CLI_CHILD=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestGenerateZipf(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "zipf.f64")
	stdout, err := runCLI(t, "-kind", "zipf", "-alpha", "1.4", "-n", "20000", "-o", out)
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	if !strings.Contains(stdout, "wrote 20000 records") {
		t.Fatalf("output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "δ (duplication ratio)") {
		t.Fatalf("missing δ report:\n%s", stdout)
	}
	keys, err := recordio.ReadFile(out, codec.Float64{})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 20000 {
		t.Fatalf("%d keys", len(keys))
	}
	if delta := workload.DupRatio(keys); delta < 0.25 || delta > 0.40 {
		t.Fatalf("δ=%v for α=1.4, want ≈0.33", delta)
	}
}

func TestGeneratePTFAndCosmo(t *testing.T) {
	dir := t.TempDir()
	ptf := filepath.Join(dir, "ptf.rec")
	if out, err := runCLI(t, "-kind", "ptf", "-n", "5000", "-o", ptf); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	recs, err := recordio.ReadFile(ptf, codec.PTFCodec{})
	if err != nil || len(recs) != 5000 {
		t.Fatalf("ptf: %d records, %v", len(recs), err)
	}

	cosmo := filepath.Join(dir, "cosmo.rec")
	if out, err := runCLI(t, "-kind", "cosmo", "-n", "5000", "-o", cosmo); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	parts, err := recordio.ReadFile(cosmo, codec.ParticleCodec{})
	if err != nil || len(parts) != 5000 {
		t.Fatalf("cosmo: %d records, %v", len(parts), err)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := runCLI(t, "-kind", "uniform", "-n", "10"); err == nil {
		t.Fatal("missing -o accepted")
	}
	if _, err := runCLI(t, "-kind", "bogus", "-n", "10", "-o", filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("bogus kind accepted")
	}
}
