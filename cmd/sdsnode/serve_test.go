package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

// readJobOutput concatenates one served job's per-rank shards in rank
// order.
func readJobOutput(t *testing.T, pattern string, ranks int) []float64 {
	t.Helper()
	var flat []float64
	for r := 0; r < ranks; r++ {
		path := fmt.Sprintf(pattern, r)
		part, err := recordio.ReadFile(path, codec.Float64{})
		if err != nil {
			t.Fatalf("job output %s: %v", path, err)
		}
		flat = append(flat, part...)
	}
	return flat
}

// TestServeModeJobStream is the multi-process face of the engine: one
// registered TCP world serving a manifest of heterogeneous jobs —
// generated and file-fed, stable and not — with every job's output
// independently verified. One bootstrap serves all of them; that the
// later jobs complete at all proves the fabric multiplexed instead of
// re-dialling (a second registration against the same registry would
// collide).
func TestServeModeJobStream(t *testing.T) {
	const p = 2
	dir := t.TempDir()

	in := filepath.Join(dir, "shared.f64")
	fileKeys := workload.ZipfKeys(3, 6000, 1.4, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, codec.Float64{}, fileKeys); err != nil {
		t.Fatal(err)
	}

	manifest := filepath.Join(dir, "jobs.jsonl")
	jobs := fmt.Sprintf(`# engine serve-mode smoke manifest
{"name": "gen-zipf", "workload": "zipf", "n": 4000, "seed": 5, "out": %q}
{"name": "from-file", "in": %q, "out": %q}

{"name": "gen-uniform", "workload": "uniform", "n": 2500, "seed": 9, "stable": true, "out": %q}
`,
		filepath.Join(dir, "zipf.{rank}.f64"),
		in, filepath.Join(dir, "file.{rank}.f64"),
		filepath.Join(dir, "uni.{rank}.f64"))
	if err := os.WriteFile(manifest, []byte(jobs), 0o644); err != nil {
		t.Fatal(err)
	}

	registry := freePort(t)
	cmds := make([]*exec.Cmd, p)
	for r := 0; r < p; r++ {
		cmds[r] = child(t,
			"-rank", fmt.Sprint(r), "-size", fmt.Sprint(p),
			"-registry", registry,
			"-serve", "-jobs", manifest)
	}
	for r, cmd := range cmds {
		if code := exitOf(cmd); code != 0 {
			t.Fatalf("rank %d exited %d, want 0", r, code)
		}
	}

	// Job 1: generated zipf, 4000 records per rank across p ranks.
	zipf := readJobOutput(t, filepath.Join(dir, "zipf.%d.f64"), p)
	if len(zipf) != 4000*p {
		t.Errorf("gen-zipf produced %d records, want %d", len(zipf), 4000*p)
	}
	if !slices.IsSorted(zipf) {
		t.Error("gen-zipf output is not globally sorted")
	}

	// Job 2: the shared file, shard-read — output must equal its sorted
	// contents exactly.
	fromFile := readJobOutput(t, filepath.Join(dir, "file.%d.f64"), p)
	want := append([]float64(nil), fileKeys...)
	slices.Sort(want)
	if !slices.Equal(fromFile, want) {
		t.Error("from-file output differs from the sorted input file")
	}

	// Job 3: generated uniform.
	uni := readJobOutput(t, filepath.Join(dir, "uni.%d.f64"), p)
	if len(uni) != 2500*p {
		t.Errorf("gen-uniform produced %d records, want %d", len(uni), 2500*p)
	}
	if !slices.IsSorted(uni) {
		t.Error("gen-uniform output is not globally sorted")
	}
}

// TestServeSkipsBadJob feeds the stream a job whose input file exists
// on no rank: the world must skip it in lockstep, run the jobs after
// it to completion, and exit 1 — degraded, not dead, and above all not
// deadlocked.
func TestServeSkipsBadJob(t *testing.T) {
	const p = 2
	dir := t.TempDir()
	manifest := filepath.Join(dir, "jobs.jsonl")
	jobs := fmt.Sprintf(`{"name": "before", "workload": "uniform", "n": 1500, "out": %q}
{"name": "broken", "in": %q}
{"name": "after", "workload": "zipf", "n": 1500, "seed": 21, "out": %q}
`,
		filepath.Join(dir, "before.{rank}.f64"),
		filepath.Join(dir, "does-not-exist.f64"),
		filepath.Join(dir, "after.{rank}.f64"))
	if err := os.WriteFile(manifest, []byte(jobs), 0o644); err != nil {
		t.Fatal(err)
	}

	registry := freePort(t)
	cmds := make([]*exec.Cmd, p)
	for r := 0; r < p; r++ {
		cmds[r] = child(t,
			"-rank", fmt.Sprint(r), "-size", fmt.Sprint(p),
			"-registry", registry,
			"-serve", "-jobs", manifest)
	}
	for r, cmd := range cmds {
		if code := exitOf(cmd); code != 1 {
			t.Fatalf("rank %d exited %d, want 1 (stream finished degraded)", r, code)
		}
	}

	// The jobs around the broken one both completed.
	for _, job := range []struct {
		pattern string
		want    int
	}{
		{filepath.Join(dir, "before.%d.f64"), 1500 * p},
		{filepath.Join(dir, "after.%d.f64"), 1500 * p},
	} {
		out := readJobOutput(t, job.pattern, p)
		if len(out) != job.want {
			t.Errorf("%s: %d records, want %d", job.pattern, len(out), job.want)
		}
		if !slices.IsSorted(out) {
			t.Errorf("%s: output not globally sorted", job.pattern)
		}
	}
}

// TestServePerJobDeadline pins satellite behavior for -job-deadline in
// serve mode: the budget is per job, so quick jobs ahead in the stream
// must not eat a later slow job's clock — and when a job does overrun,
// the process exits 4 exactly as one-shot mode does.
func TestServePerJobDeadline(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "jobs.jsonl")
	// Three quick jobs, then one big enough to blow a 25ms budget on
	// its own. If the deadline were per process, the quick jobs would
	// consume it before the slow one even starts — the exit code would
	// be the same, so the real assertion is the paired test below: the
	// same quick jobs under the same flag pass when no job overruns.
	jobs := `{"name": "q0", "workload": "uniform", "n": 200}
{"name": "q1", "workload": "uniform", "n": 200}
{"name": "q2", "workload": "uniform", "n": 200}
{"name": "slow", "workload": "zipf", "n": 3000000, "deadline": "25ms"}
`
	if err := os.WriteFile(manifest, []byte(jobs), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := child(t, "-rank", "0", "-size", "1",
		"-registry", freePort(t),
		"-serve", "-jobs", manifest)
	if code := exitOf(cmd); code != 4 {
		t.Fatalf("overrunning served job exited %d, want 4", code)
	}
}

// TestServeDeadlineResetsBetweenJobs is the positive half: many jobs,
// each comfortably inside the per-job budget but far beyond it in
// total, must all pass — proof the clock restarts per job instead of
// accumulating across the stream.
func TestServeDeadlineResetsBetweenJobs(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "jobs.jsonl")
	var jobs string
	for i := 0; i < 6; i++ {
		jobs += fmt.Sprintf(`{"name": "j%d", "workload": "uniform", "n": 60000, "seed": %d}`+"\n", i, i+1)
	}
	if err := os.WriteFile(manifest, []byte(jobs), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := child(t, "-rank", "0", "-size", "1",
		"-registry", freePort(t),
		"-serve", "-jobs", manifest,
		"-job-deadline", "10s")
	if code := exitOf(cmd); code != 0 {
		t.Fatalf("stream with per-job headroom exited %d, want 0", code)
	}
}

// TestServeUsageErrors pins serve-mode flag validation.
func TestServeUsageErrors(t *testing.T) {
	t.Run("bad-manifest", func(t *testing.T) {
		dir := t.TempDir()
		manifest := filepath.Join(dir, "jobs.jsonl")
		if err := os.WriteFile(manifest, []byte(`{"workloda": "zipf"}`), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := child(t, "-rank", "0", "-size", "1",
			"-registry", freePort(t), "-serve", "-jobs", manifest)
		if code := exitOf(cmd); code != 2 {
			t.Fatalf("typo'd manifest exited %d, want 2 (before bootstrap)", code)
		}
	})
	t.Run("ckpt-with-serve", func(t *testing.T) {
		cmd := child(t, "-rank", "0", "-size", "1",
			"-registry", freePort(t), "-serve",
			"-ckpt-dir", t.TempDir())
		if code := exitOf(cmd); code != 2 {
			t.Fatalf("-ckpt-dir with -serve exited %d, want 2", code)
		}
	})
	t.Run("empty-stream", func(t *testing.T) {
		dir := t.TempDir()
		manifest := filepath.Join(dir, "jobs.jsonl")
		if err := os.WriteFile(manifest, []byte("# nothing\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := child(t, "-rank", "0", "-size", "1",
			"-registry", freePort(t), "-serve", "-jobs", manifest)
		if code := exitOf(cmd); code != 2 {
			t.Fatalf("empty job stream exited %d, want 2", code)
		}
	})
}
