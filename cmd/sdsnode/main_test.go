package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

func TestMain(m *testing.M) {
	if os.Getenv("SDSNODE_CLI_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDistributedProcesses runs a real multi-process sort: each rank is
// its own OS process talking TCP, reading its shard of a shared input
// file and writing its sorted shard — the full cmd/sdsnode deployment
// story on one machine.
func TestDistributedProcesses(t *testing.T) {
	const p = 3
	dir := t.TempDir()
	in := filepath.Join(dir, "shared.f64")
	keys := workload.ZipfKeys(7, 9000, 1.4, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, codec.Float64{}, keys); err != nil {
		t.Fatal(err)
	}
	registry := freePort(t)

	cmds := make([]*exec.Cmd, p)
	outs := make([]string, p)
	for r := 0; r < p; r++ {
		outs[r] = filepath.Join(dir, fmt.Sprintf("out-%d.f64", r))
		cmd := exec.Command(os.Args[0],
			"-rank", fmt.Sprint(r), "-size", fmt.Sprint(p),
			"-registry", registry,
			"-in", in, "-out", outs[r])
		cmd.Env = append(os.Environ(), "SDSNODE_CLI_CHILD=1")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("rank %d process failed: %v", r, err)
		}
	}

	// Concatenating shard outputs in rank order must reproduce the
	// sorted input.
	var flat []float64
	for r := 0; r < p; r++ {
		part, err := recordio.ReadFile(outs[r], codec.Float64{})
		if err != nil {
			t.Fatal(err)
		}
		flat = append(flat, part...)
	}
	want := append([]float64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(flat, want) {
		t.Fatal("multi-process output differs from the sorted input")
	}
}

func TestNodeBadFlags(t *testing.T) {
	run := func(args ...string) error {
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "SDSNODE_CLI_CHILD=1")
		return cmd.Run()
	}
	if err := run("-rank", "5", "-size", "2"); err == nil {
		t.Fatal("rank out of range accepted")
	}
	if err := run("-rank", "0", "-size", "0"); err == nil {
		t.Fatal("zero size accepted")
	}
}
