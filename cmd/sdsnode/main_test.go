package main

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"sdssort/internal/checkpoint"
	"sdssort/internal/codec"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

func TestMain(m *testing.M) {
	if os.Getenv("SDSNODE_CLI_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDistributedProcesses runs a real multi-process sort: each rank is
// its own OS process talking TCP, reading its shard of a shared input
// file and writing its sorted shard — the full cmd/sdsnode deployment
// story on one machine.
func TestDistributedProcesses(t *testing.T) {
	const p = 3
	dir := t.TempDir()
	in := filepath.Join(dir, "shared.f64")
	keys := workload.ZipfKeys(7, 9000, 1.4, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, codec.Float64{}, keys); err != nil {
		t.Fatal(err)
	}
	registry := freePort(t)

	cmds := make([]*exec.Cmd, p)
	outs := make([]string, p)
	for r := 0; r < p; r++ {
		outs[r] = filepath.Join(dir, fmt.Sprintf("out-%d.f64", r))
		cmd := exec.Command(os.Args[0],
			"-rank", fmt.Sprint(r), "-size", fmt.Sprint(p),
			"-registry", registry,
			"-in", in, "-out", outs[r])
		cmd.Env = append(os.Environ(), "SDSNODE_CLI_CHILD=1")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("rank %d process failed: %v", r, err)
		}
	}

	// Concatenating shard outputs in rank order must reproduce the
	// sorted input.
	var flat []float64
	for r := 0; r < p; r++ {
		part, err := recordio.ReadFile(outs[r], codec.Float64{})
		if err != nil {
			t.Fatal(err)
		}
		flat = append(flat, part...)
	}
	want := append([]float64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(flat, want) {
		t.Fatal("multi-process output differs from the sorted input")
	}
}

func TestNodeBadFlags(t *testing.T) {
	run := func(args ...string) error {
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "SDSNODE_CLI_CHILD=1")
		return cmd.Run()
	}
	if err := run("-rank", "5", "-size", "2"); err == nil {
		t.Fatal("rank out of range accepted")
	}
	if err := run("-rank", "0", "-size", "0"); err == nil {
		t.Fatal("zero size accepted")
	}
}

// child starts one sdsnode child process and returns the command.
func child(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SDSNODE_CLI_CHILD=1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// exitOf waits for the child and returns its exit code.
func exitOf(cmd *exec.Cmd) int {
	err := cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// TestExitCodeContract pins the supervisor-facing exit codes: usage
// errors, local errors, deadline overruns and lost peers must each be
// distinguishable without parsing log output.
func TestExitCodeContract(t *testing.T) {
	t.Run("usage", func(t *testing.T) {
		cmd := child(t, "-rank", "5", "-size", "2")
		if code := exitOf(cmd); code != 2 {
			t.Fatalf("usage error exited %d, want 2", code)
		}
	})
	t.Run("local-error", func(t *testing.T) {
		// A single-rank world needs no peers, so the missing input file
		// is the only failure — a local error.
		cmd := child(t, "-rank", "0", "-size", "1",
			"-registry", freePort(t),
			"-in", filepath.Join(t.TempDir(), "does-not-exist.f64"))
		if code := exitOf(cmd); code != 1 {
			t.Fatalf("missing input exited %d, want 1", code)
		}
	})
	t.Run("deadline", func(t *testing.T) {
		// Rank 1 of 2 pointed at a registry nobody serves: bootstrap
		// would block until -timeout, but the job deadline fires first.
		cmd := child(t, "-rank", "1", "-size", "2",
			"-registry", freePort(t),
			"-timeout", "30s", "-job-deadline", "300ms")
		if code := exitOf(cmd); code != 4 {
			t.Fatalf("deadline overrun exited %d, want 4", code)
		}
	})
	t.Run("peer-lost", func(t *testing.T) {
		registry := freePort(t)
		dir := t.TempDir()
		in := filepath.Join(dir, "in.f64")
		if err := recordio.WriteFile(in, codec.Float64{}, workload.Uniform(1, 2000)); err != nil {
			t.Fatal(err)
		}
		// Rank 1 joins the world, then dies on a missing input file.
		// Rank 0's retry budget must classify that as a lost peer.
		r0 := child(t, "-rank", "0", "-size", "2", "-registry", registry,
			"-in", in,
			"-recv-timeout", "3s", "-retries", "3",
			"-retry-base", "1ms", "-retry-max", "10ms", "-gap-timeout", "500ms")
		r1 := child(t, "-rank", "1", "-size", "2", "-registry", registry,
			"-in", filepath.Join(dir, "does-not-exist.f64"))
		if code := exitOf(r1); code != 1 {
			t.Fatalf("dying rank exited %d, want 1", code)
		}
		if code := exitOf(r0); code != 3 {
			t.Fatalf("surviving rank exited %d, want 3", code)
		}
	})
}

// TestDistributedResume is the multi-process recovery story: a full
// checkpointed run, then a relaunch at epoch 1 that must resume from
// the final cut and reproduce the identical output.
func TestDistributedResume(t *testing.T) {
	const p = 2
	dir := t.TempDir()
	in := filepath.Join(dir, "shared.f64")
	keys := workload.ZipfKeys(11, 6000, 1.4, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, codec.Float64{}, keys); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "ckpt")

	launch := func(epoch int, outPrefix string) []string {
		t.Helper()
		registry := freePort(t)
		cmds := make([]*exec.Cmd, p)
		outs := make([]string, p)
		for r := 0; r < p; r++ {
			outs[r] = filepath.Join(dir, fmt.Sprintf("%s-%d.f64", outPrefix, r))
			cmds[r] = child(t,
				"-rank", fmt.Sprint(r), "-size", fmt.Sprint(p),
				"-registry", registry,
				"-in", in, "-out", outs[r],
				"-ckpt-dir", ckpt, "-epoch", fmt.Sprint(epoch))
		}
		for r, cmd := range cmds {
			if code := exitOf(cmd); code != 0 {
				t.Fatalf("epoch %d rank %d exited %d, want 0", epoch, r, code)
			}
		}
		return outs
	}

	first := launch(0, "first")
	resumed := launch(1, "resumed")
	for r := 0; r < p; r++ {
		a, err := recordio.ReadFile(first[r], codec.Float64{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := recordio.ReadFile(resumed[r], codec.Float64{})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(a, b) {
			t.Fatalf("rank %d: resumed output differs from the original run", r)
		}
	}
	// And the resumed run really did come from a checkpoint, not a
	// re-sort: epoch 1 re-saved the cut under its own number.
	store, err := checkpoint.NewStore(ckpt, p)
	if err != nil {
		t.Fatal(err)
	}
	cut, ok := store.LatestConsistent()
	if !ok || cut.Epoch != 1 || cut.Phase != checkpoint.PhaseFinal {
		t.Fatalf("after resume the latest cut is %+v ok=%v, want final@1", cut, ok)
	}
}

// TestDistributedSpilledSort is the out-of-core deployment story: three
// real processes sort a shared file whose per-rank shard exceeds the
// per-process -mem budget, streaming through -spill-dir. The shard is
// never resident, the outputs concatenate to the sorted input, and the
// shared spill directory is left empty.
func TestDistributedSpilledSort(t *testing.T) {
	const p = 3
	dir := t.TempDir()
	in := filepath.Join(dir, "shared.f64")
	spill := filepath.Join(dir, "spill")
	if err := os.MkdirAll(spill, 0o755); err != nil {
		t.Fatal(err)
	}
	// 30000 × 8 B = 240 KB, 80 KB per rank — over the 64 KB budget.
	keys := workload.ZipfKeys(13, 30000, 1.3, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, codec.Float64{}, keys); err != nil {
		t.Fatal(err)
	}
	registry := freePort(t)

	var stderr [p]bytes.Buffer
	cmds := make([]*exec.Cmd, p)
	outs := make([]string, p)
	for r := 0; r < p; r++ {
		outs[r] = filepath.Join(dir, fmt.Sprintf("out-%d.f64", r))
		cmd := exec.Command(os.Args[0],
			"-rank", fmt.Sprint(r), "-size", fmt.Sprint(p),
			"-registry", registry,
			"-in", in, "-out", outs[r], "-stable",
			"-mem", "65536", "-spill-dir", spill)
		cmd.Env = append(os.Environ(), "SDSNODE_CLI_CHILD=1")
		cmd.Stderr = &stderr[r]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("rank %d process failed: %v\n%s", r, err, stderr[r].String())
		}
	}
	for r := range stderr {
		if !strings.Contains(stderr[r].String(), "records spilled locally") {
			t.Fatalf("rank %d did not take the spilled path:\n%s", r, stderr[r].String())
		}
	}

	var flat []float64
	for r := 0; r < p; r++ {
		part, err := recordio.ReadFile(outs[r], codec.Float64{})
		if err != nil {
			t.Fatal(err)
		}
		flat = append(flat, part...)
	}
	want := append([]float64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(flat, want) {
		t.Fatal("spilled multi-process output differs from the sorted input")
	}
	ents, err := os.ReadDir(spill)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("shared spill dir not empty after the run: %v", ents)
	}
}
