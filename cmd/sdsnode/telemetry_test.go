package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tryScrape fetches one telemetry path, returning an error while the
// child is still booting.
func tryScrape(addr, path string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	res, err := client.Get("http://" + addr + path)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %d\n%s", path, res.StatusCode, body)
	}
	return string(body), nil
}

// waitScrape polls path until pred accepts the body or the deadline
// passes.
func waitScrape(t *testing.T, addr, path string, pred func(string) bool) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var body string
	var err error
	for time.Now().Before(deadline) {
		body, err = tryScrape(addr, path)
		if err == nil && pred(body) {
			return body
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never matched; last error: %v, last body:\n%s", path, err, body)
	return ""
}

// metricValue extracts an un-labelled series value, or -1 if absent.
func metricValue(body, name string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			if v, err := strconv.ParseFloat(rest, 64); err == nil {
				return v
			}
		}
	}
	return -1
}

// TestServeTelemetryPlane is the end-to-end acceptance run: a real
// 2-process TCP world in -serve mode with -telemetry-addr on the
// coordinator, scraped over HTTP while a long job stream runs. It
// checks the local series, the fabric-wide totals (which need rank 1's
// responder to answer over the fabric), /healthz, /debug/pprof and
// /debug/trace. The stream is sized so the world stays busy while the
// scrapers probe it; every scrape-dependent assertion happens before
// the stream can drain.
func TestServeTelemetryPlane(t *testing.T) {
	const (
		p     = 2
		nJobs = 30
	)
	dir := t.TempDir()
	registry := freePort(t)
	telAddr := freePort(t)

	// All jobs are decoded before the world boots, so the whole stream
	// is written up front. The last job is much larger than the rest:
	// a long tail that keeps the plane alive for the final scrapes.
	var manifest strings.Builder
	for i := 0; i < nJobs; i++ {
		n := 20000
		if i == nJobs-1 {
			n = 400000
		}
		fmt.Fprintf(&manifest, `{"name": "tel%d", "workload": "zipf", "n": %d, "seed": %d, "out": %q}`+"\n",
			i, n, i+1, filepath.Join(dir, fmt.Sprintf("job%d.{rank}.f64", i)))
	}

	cmds := make([]*exec.Cmd, p)
	for r := 0; r < p; r++ {
		args := []string{
			"-rank", fmt.Sprint(r), "-size", fmt.Sprint(p),
			"-registry", registry, "-serve",
			"-mem", fmt.Sprint(256 << 20),
		}
		if r == 0 {
			args = append(args, "-telemetry-addr", telAddr)
		}
		cmd := exec.Command(os.Args[0], args...)
		cmd.Env = append(os.Environ(), "SDSNODE_CLI_CHILD=1")
		cmd.Stdin = strings.NewReader(manifest.String())
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[r] = cmd
	}

	// The plane is up while the stream runs: node info, the memory
	// budget and the transport counters are scrapeable.
	body := waitScrape(t, telAddr, "/metrics", func(b string) bool {
		return strings.Contains(b, "sds_node_info")
	})
	if !strings.Contains(body, `sds_node_info{epoch="0",rank="0",size="2"} 1`) {
		t.Errorf("node info series wrong:\n%s", body)
	}
	if v := metricValue(body, "sds_mem_budget_bytes"); v != 256<<20 {
		t.Errorf("sds_mem_budget_bytes = %v, want %d", v, 256<<20)
	}

	// At least one job completes and its sort crossed the wire.
	body = waitScrape(t, telAddr, "/metrics", func(b string) bool {
		return metricValue(b, "sds_node_jobs_done_total") >= 1 &&
			metricValue(b, "sds_tcp_frames_sent_total") >= 1
	})
	if v := metricValue(body, "sds_node_jobs_failed_total"); v != 0 {
		t.Errorf("sds_node_jobs_failed_total = %v, want 0", v)
	}

	// Fabric-wide totals: scrapes kick background gathers until rank
	// 1's snapshot lands.
	body = waitScrape(t, telAddr, "/metrics", func(b string) bool {
		return metricValue(b, "sds_fabric_node_jobs_done_total") >= 1
	})
	if v := metricValue(body, "sds_fabric_ranks"); v != p {
		t.Errorf("sds_fabric_ranks = %v, want %d", v, p)
	}
	// The fabric total sums both ranks' sends, but at the cached gather
	// instant — it can trail the live local counter, so presence is all
	// a point-in-time scrape can assert (the summation itself is pinned
	// down by the aggregator unit tests).
	if v := metricValue(body, "sds_fabric_tcp_frames_sent_total"); v < 1 {
		t.Errorf("sds_fabric_tcp_frames_sent_total = %v, want >= 1", v)
	}

	// /healthz agrees, as JSON, with a non-negative gather age now that
	// a fabric gather has landed.
	hb := waitScrape(t, telAddr, "/healthz", func(b string) bool { return true })
	var h struct {
		Status string  `json:"status"`
		Rank   int     `json:"rank"`
		Size   int     `json:"size"`
		Done   int64   `json:"jobs_done"`
		Age    float64 `json:"gather_age_seconds"`
	}
	if err := json.Unmarshal([]byte(hb), &h); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, hb)
	}
	if h.Status != "ok" || h.Rank != 0 || h.Size != p || h.Done < 1 || h.Age < 0 {
		t.Errorf("healthz payload: %+v", h)
	}

	// /debug/trace replays recent events as JSONL; /debug/pprof is
	// mounted.
	tb := waitScrape(t, telAddr, "/debug/trace", func(b string) bool {
		return strings.Contains(b, "sort.done")
	})
	if !strings.Contains(tb, `"kind":`) {
		t.Errorf("trace not JSONL:\n%s", tb)
	}
	if _, err := tryScrape(telAddr, "/debug/pprof/"); err != nil {
		t.Errorf("pprof: %v", err)
	}

	// The stream drains and the world exits clean.
	for r, cmd := range cmds {
		if code := exitOf(cmd); code != 0 {
			t.Fatalf("rank %d exited %d, want 0", r, code)
		}
	}

	// And the jobs were real sorts: spot-check the first one.
	flat := readJobOutput(t, filepath.Join(dir, "job0.%d.f64"), p)
	if len(flat) != 20000*p {
		t.Errorf("job0 output %d records, want %d", len(flat), 20000*p)
	}
	if !slices.IsSorted(flat) {
		t.Error("job0 output not globally sorted")
	}
}
