package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"

	"sdssort/internal/checkpoint"
	"sdssort/internal/codec"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

// e2eSeed varies the kill placement across CI soak-lane runs
// (FAULTNET_SEED=n go test -run Shrink), mirroring the in-proc soaks.
func e2eSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("FAULTNET_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad FAULTNET_SEED %q: %v", s, err)
	}
	t.Logf("fault schedule seed %d", v)
	return v
}

// shrinkArgs builds one rank's argument list for a shrink e2e. Every
// rank runs the fault-injection harness (the injected framing must be
// world-wide) with synchronous checkpoints, so a kill keyed on a
// manifest file fires deterministically at the phase boundary it names;
// the victim's kill spec rides on top. The finite receive timeout makes
// a survivor blocked on the dead rank fail out of the sort instead of
// waiting forever.
func shrinkArgs(rank, size int, registry, in, out, ckpt, trc string, kill ...string) []string {
	args := []string{
		"-rank", fmt.Sprint(rank), "-size", fmt.Sprint(size),
		"-registry", registry,
		"-in", in, "-out", out,
		"-ckpt-dir", ckpt, "-ckpt-sync", "-allow-shrink",
		"-fault-wrap",
		"-trace", trc,
		"-recv-timeout", "2s", "-gap-timeout", "500ms",
		"-retries", "3", "-retry-base", "1ms", "-retry-max", "20ms",
	}
	return append(args, kill...)
}

// TestDistributedShrink is the tentpole's end-to-end story: 4 real OS
// processes over TCP, one dying a hard death mid-exchange, and the
// other three must finish the sort from the last checkpoint cut —
// exiting 5, with the concatenated survivor shards reproducing the
// sorted input.
func TestDistributedShrink(t *testing.T) {
	const p = 4
	seed := e2eSeed(t)
	victim := int(seed % p)
	if victim < 0 {
		victim += p
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "shared.f64")
	keys := workload.ZipfKeys(seed, p*20_000, 1.4, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, codec.Float64{}, keys); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "ckpt")
	registry := freePort(t)

	// The kill trigger is the victim's own partition manifest: with
	// -ckpt-sync it is committed before the exchange begins, so the
	// victim's process dies on its first exchange operation.
	full, err := checkpoint.NewStore(ckpt, p)
	if err != nil {
		t.Fatal(err)
	}
	trigger := full.ManifestPath(0, checkpoint.PhasePartition, victim)

	cmds := make([]*exec.Cmd, p)
	outs := make([]string, p)
	trcs := make([]string, p)
	for r := 0; r < p; r++ {
		outs[r] = filepath.Join(dir, fmt.Sprintf("out-%d.f64", r))
		trcs[r] = filepath.Join(dir, fmt.Sprintf("trace-%d.jsonl", r))
		args := shrinkArgs(r, p, registry, in, outs[r], ckpt, trcs[r],
			"-fault-kill-rank", fmt.Sprint(victim), "-fault-kill-after-file", trigger)
		cmds[r] = child(t, args...)
	}

	codes := make([]int, p)
	for r := 0; r < p; r++ {
		codes[r] = exitOf(cmds[r])
	}
	for r := 0; r < p; r++ {
		if r == victim {
			if codes[r] != 137 {
				t.Fatalf("killed rank %d exited %d, want 137", r, codes[r])
			}
			continue
		}
		if codes[r] != exitDegraded {
			t.Fatalf("survivor rank %d exited %d, want %d (degraded success)", r, codes[r], exitDegraded)
		}
	}

	// Concatenating the survivor shards in rank order must reproduce
	// the sorted input — the dead rank's records included.
	var flat []float64
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		part, err := recordio.ReadFile(outs[r], codec.Float64{})
		if err != nil {
			t.Fatal(err)
		}
		flat = append(flat, part...)
	}
	want := append([]float64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(flat, want) {
		t.Fatalf("degraded output differs from the sorted input (%d records, want %d)", len(flat), len(want))
	}

	// The recovery must have been a shrink, not a relaunch: every
	// survivor traced the shrink decision.
	for r := 0; r < p; r++ {
		if r == victim {
			continue
		}
		trc, err := os.ReadFile(trcs[r])
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(trc), `"node.shrink"`) {
			t.Errorf("rank %d trace has no node.shrink event", r)
		}
	}
}

// TestDistributedShrinkCascade kills a second rank the moment the
// shrink commits its redistributed cut: the degraded world cannot
// shrink again (shrinkAndResume runs once), so the remaining survivors
// must fall back to the exit-3 full-relaunch contract.
func TestDistributedShrinkCascade(t *testing.T) {
	const p = 4
	dir := t.TempDir()
	in := filepath.Join(dir, "shared.f64")
	keys := workload.ZipfKeys(e2eSeed(t), p*20_000, 1.4, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, codec.Float64{}, keys); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "ckpt")
	registry := freePort(t)

	full, err := checkpoint.NewStore(ckpt, p)
	if err != nil {
		t.Fatal(err)
	}
	// Shrunken stores share the directory layout, so the redistributed
	// cut's first manifest — written by the shrink itself, at the
	// degraded epoch — is an unambiguous "the shrink committed" signal.
	shrunk, err := checkpoint.NewStore(ckpt, p-1)
	if err != nil {
		t.Fatal(err)
	}
	// First kill: rank 1 dies mid-exchange of the full world. Second
	// kill: rank 2 dies on its first transport operation after the
	// shrink commits — before the degraded epoch can make progress.
	kills := map[int][]string{
		1: {"-fault-kill-rank", "1", "-fault-kill-after-file", full.ManifestPath(0, checkpoint.PhasePartition, 1)},
		2: {"-fault-kill-rank", "2", "-fault-kill-after-file", shrunk.ManifestPath(1, checkpoint.PhaseLocalSort, 0)},
	}

	cmds := make([]*exec.Cmd, p)
	for r := 0; r < p; r++ {
		out := filepath.Join(dir, fmt.Sprintf("out-%d.f64", r))
		trc := filepath.Join(dir, fmt.Sprintf("trace-%d.jsonl", r))
		cmds[r] = child(t, shrinkArgs(r, p, registry, in, out, ckpt, trc, kills[r]...)...)
	}

	codes := make([]int, p)
	for r := 0; r < p; r++ {
		codes[r] = exitOf(cmds[r])
	}
	for _, r := range []int{1, 2} {
		if codes[r] != 137 {
			t.Fatalf("killed rank %d exited %d, want 137 (codes %v)", r, codes[r], codes)
		}
	}
	for _, r := range []int{0, 3} {
		if codes[r] != exitPeerLost {
			t.Fatalf("rank %d exited %d after the cascade, want %d (restartable; codes %v)", r, codes[r], exitPeerLost, codes)
		}
	}
}
