// Command sdsnode runs one rank of a genuinely distributed SDS-Sort
// over the TCP transport. Start one process per rank; rank 0 also
// serves the bootstrap registry.
//
// Example, 4 ranks on one machine (run in 4 shells or with &):
//
//	sdsnode -rank 0 -size 4 -registry 127.0.0.1:7777 -n 100000 &
//	sdsnode -rank 1 -size 4 -registry 127.0.0.1:7777 -n 100000 &
//	sdsnode -rank 2 -size 4 -registry 127.0.0.1:7777 -n 100000 &
//	sdsnode -rank 3 -size 4 -registry 127.0.0.1:7777 -n 100000
//
// Each rank either generates its shard (-workload) or reads it from a
// file (-in). The sorted shard can be written with -out; the run's
// timing and final load are printed either way.
//
// Exit codes form a contract an external supervisor can act on:
//
//	0  success
//	1  local error (bad input file, sort failure, write failure)
//	2  usage error (bad flags)
//	3  a peer rank was lost (retry budget exhausted) — restartable
//	4  -job-deadline exceeded
//
// With -ckpt-dir set, each rank snapshots its data at the phase
// boundaries. After a failure (exit 3), relaunch every rank with the
// same -ckpt-dir and -epoch incremented; rank 0's -epoch is
// authoritative and is adopted by the other ranks at registration, so
// only the coordinator's flag strictly matters. The relaunched world
// agrees on the latest globally consistent checkpoint cut and resumes
// from it instead of re-sorting from scratch.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"sdssort/internal/checkpoint"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/comm/tcpcomm"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

// Exit codes: the supervisor contract. Keep in sync with the package
// comment and docs/INTERNALS.md.
const (
	exitOK         = 0
	exitLocalError = 1
	exitUsage      = 2
	exitPeerLost   = 3
	exitDeadline   = 4
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// exitCode classifies an error into the exit-code contract.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	if _, ok := comm.PeerLost(err); ok {
		return exitPeerLost
	}
	return exitLocalError
}

func run(args []string) int {
	log.SetFlags(0)
	fs := flag.NewFlagSet("sdsnode", flag.ContinueOnError)
	var (
		rank     = fs.Int("rank", -1, "this process's rank (0..size-1, required)")
		size     = fs.Int("size", 0, "total ranks (required)")
		node     = fs.Int("node", -1, "physical node id (default: rank)")
		registry = fs.String("registry", "127.0.0.1:7777", "bootstrap registry address (rank 0 binds it)")
		listen   = fs.String("listen", "127.0.0.1:0", "data listener bind address")
		wl       = fs.String("workload", "zipf", "generated shard: uniform | zipf")
		alpha    = fs.Float64("alpha", 1.4, "Zipf exponent")
		n        = fs.Int("n", 100_000, "records per rank when generating")
		in       = fs.String("in", "", "read this rank's shard from a float64 record file instead")
		out      = fs.String("out", "", "write the sorted shard here")
		stable   = fs.Bool("stable", false, "stable sort")
		stage    = fs.Int64("stage", 0, "staging window for the data exchange in bytes (0 = monolithic all-to-all)")
		seed     = fs.Int64("seed", 1, "workload seed (combined with rank)")
		timeout  = fs.Duration("timeout", 30*time.Second, "bootstrap timeout")

		epoch    = fs.Int("epoch", 0, "recovery epoch; rank 0's value is authoritative and adopted by all ranks")
		ckptDir  = fs.String("ckpt-dir", "", "checkpoint directory shared by all ranks; enables phase snapshots and resume")
		deadline = fs.Duration("job-deadline", 0, "kill the whole job after this wall-clock budget (0 = none)")

		retries   = fs.Int("retries", 5, "per-frame send attempts before declaring the peer lost")
		retryBase = fs.Duration("retry-base", 2*time.Millisecond, "initial send retry backoff (doubles per attempt)")
		retryMax  = fs.Duration("retry-max", 250*time.Millisecond, "send retry backoff cap")
		sendTO    = fs.Duration("send-timeout", 30*time.Second, "per-frame connection write deadline")
		recvTO    = fs.Duration("recv-timeout", 0, "receive failure-detector timeout (0 = wait forever, as MPI does)")
		gapTO     = fs.Duration("gap-timeout", 5*time.Second, "how long a sequence gap may persist after a reconnect before the peer is declared lost")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *rank < 0 || *size <= 0 || *rank >= *size {
		log.Printf("sdsnode: need -rank in [0,%d) and -size > 0", *size)
		return exitUsage
	}
	if *epoch < 0 {
		log.Printf("sdsnode: negative -epoch %d", *epoch)
		return exitUsage
	}
	log.SetPrefix(fmt.Sprintf("sdsnode[%d]: ", *rank))
	nodeID := *node
	if nodeID < 0 {
		nodeID = *rank
	}

	// The deadline is absolute: when it fires the process is past
	// saving, so exit directly rather than threading cancellation
	// through every blocking transport call.
	if *deadline > 0 {
		time.AfterFunc(*deadline, func() {
			log.Printf("job deadline %v exceeded", *deadline)
			os.Exit(exitDeadline)
		})
	}

	tr, err := tcpcomm.New(tcpcomm.Config{
		Rank: *rank, Size: *size, Node: nodeID, Epoch: *epoch,
		Registry: *registry, Listen: *listen, Timeout: *timeout,
		Retry: comm.RetryPolicy{
			MaxAttempts: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax,
			Seed: *seed + int64(*rank),
		},
		SendTimeout: *sendTO,
		RecvTimeout: *recvTO,
		GapTimeout:  *gapTO,
	})
	if err != nil {
		log.Printf("bootstrap: %v", err)
		return exitCode(err)
	}
	defer tr.Close()
	// The coordinator's epoch won at registration; name the world after
	// it so frames from an older incarnation are undeliverable here.
	ep := tr.Epoch()
	worldName := "world"
	if ep > 0 {
		worldName = fmt.Sprintf("world@e%d", ep)
	}
	c := comm.NewNamed(tr, worldName)
	log.Printf("joined world of %d ranks (epoch %d)", *size, ep)

	var data []float64
	if *in != "" {
		// Each rank seeks directly to its shard of the shared file.
		data, err = recordio.ReadShard(*in, codec.Float64{}, *rank, *size)
		if err != nil {
			log.Print(err)
			return exitLocalError
		}
	} else {
		switch *wl {
		case "uniform":
			data = workload.Uniform(*seed+int64(*rank)*997, *n)
		case "zipf":
			data = workload.ZipfKeys(*seed+int64(*rank)*997, *n, *alpha, workload.DefaultZipfUniverse)
		default:
			log.Printf("unknown workload %q", *wl)
			return exitUsage
		}
	}

	opt := core.DefaultOptions()
	opt.Stable = *stable
	opt.StageBytes = *stage
	var exch *metrics.ExchangeStats
	if *stage > 0 {
		exch = &metrics.ExchangeStats{}
		opt.Exchange = exch
	}
	tm := metrics.NewPhaseTimer()
	opt.Timer = tm
	var ck *core.Checkpointing
	if *ckptDir != "" {
		store, err := checkpoint.NewStore(*ckptDir, *size)
		if err != nil {
			log.Printf("checkpoint: %v", err)
			return exitLocalError
		}
		ck = &core.Checkpointing{Store: store, Epoch: ep}
		if ep > 0 {
			cut, ok, err := checkpoint.AgreeCut(c, store)
			if err != nil {
				log.Printf("checkpoint cut: %v", err)
				return exitCode(err)
			}
			if ok {
				ck.Resume = cut
				log.Printf("resuming from checkpoint %s of epoch %d", cut.Phase, cut.Epoch)
			} else {
				log.Printf("no consistent checkpoint; restarting from scratch")
			}
		}
		opt.Checkpoint = ck
	}

	start := time.Now()
	sorted, err := core.Sort(c, data, codec.Float64{}, cmpF, opt)
	if err != nil {
		if lost, ok := comm.PeerLost(err); ok {
			// Degrade with a clear verdict rather than a hang: the
			// retry budget for this peer is spent, the run is dead.
			log.Printf("sort: peer rank %d lost (retry budget exhausted): %v", lost, err)
		} else {
			log.Printf("sort: %v", err)
		}
		return exitCode(err)
	}
	elapsed := time.Since(start)
	// Snapshots commit in the background; make them durable before
	// claiming success — the next epoch's resume depends on them.
	if err := ck.Wait(); err != nil {
		log.Printf("checkpoint: %v", err)
		return exitLocalError
	}
	log.Printf("done in %v: %d records held locally", elapsed.Round(time.Millisecond), len(sorted))
	for _, ph := range metrics.Phases() {
		log.Printf("  %-16s %s", ph.String(), metrics.FmtDur(tm.Get(ph)))
	}
	if exch != nil {
		log.Printf("  %s", exch)
	}

	if *out != "" {
		if err := recordio.WriteFile(*out, codec.Float64{}, sorted); err != nil {
			log.Print(err)
			return exitLocalError
		}
		log.Printf("wrote %s", *out)
	}
	// Leave together: a final barrier keeps rank 0's process alive
	// until everyone has finished sending.
	if err := c.Barrier(); err != nil {
		if lost, ok := comm.PeerLost(err); ok {
			log.Printf("final barrier: peer rank %d lost: %v", lost, err)
		} else {
			log.Printf("final barrier: %v", err)
		}
		return exitCode(err)
	}
	return exitOK
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
