// Command sdsnode runs one rank of a genuinely distributed SDS-Sort
// over the TCP transport. Start one process per rank; rank 0 also
// serves the bootstrap registry.
//
// Example, 4 ranks on one machine (run in 4 shells or with &):
//
//	sdsnode -rank 0 -size 4 -registry 127.0.0.1:7777 -n 100000 &
//	sdsnode -rank 1 -size 4 -registry 127.0.0.1:7777 -n 100000 &
//	sdsnode -rank 2 -size 4 -registry 127.0.0.1:7777 -n 100000 &
//	sdsnode -rank 3 -size 4 -registry 127.0.0.1:7777 -n 100000
//
// Each rank either generates its shard (-workload) or reads it from a
// file (-in). The sorted shard can be written with -out; the run's
// timing and final load are printed either way.
//
// With -serve the process becomes a persistent job server instead of
// exiting after one sort: the already-registered TCP world is kept
// warm and a stream of job specs — one JSON object per line, from a
// -jobs manifest file or stdin — runs on it back to back, each job on
// its own job-scoped communicator ("world/job0", "world/job1", ...).
// Every rank must be given the identical job stream. No re-dial, no
// handshake, no re-registration happens between jobs; that is the
// point. See internal/engine.NodeJob for the spec fields.
//
// Exit codes form a contract an external supervisor can act on:
//
//	0  success (in -serve mode: every job succeeded)
//	1  local error (bad input file, sort failure, write failure; in
//	   -serve mode: at least one job failed but the stream finished)
//	2  usage error (bad flags or a bad job manifest)
//	3  a peer rank was lost (retry budget exhausted) — restartable
//	4  -job-deadline exceeded
//	5  degraded success: with -allow-shrink, the sort lost ranks but
//	   finished on the survivors — output is complete and globally
//	   sorted, the world is just smaller than launched
//
// -job-deadline applies per job: in one-shot mode the single sort IS
// the job, and in -serve mode the clock restarts for every job in the
// stream (a job spec may override it with its own "deadline"). When a
// deadline fires the whole process still exits with code 4 — the rank
// is wedged mid-collective and cannot rejoin the next job — so any
// remaining jobs in the stream are abandoned, and the peers observe
// the loss as exit 3. Supervisors should treat 4 in -serve mode as
// "restart the world, resubmit the unfinished tail of the stream".
//
// With -ckpt-dir set (one-shot mode only), each rank snapshots its data
// at the phase boundaries. After a failure (exit 3), relaunch every
// rank with the same -ckpt-dir and -epoch incremented; rank 0's -epoch
// is authoritative and is adopted by the other ranks at registration,
// so only the coordinator's flag strictly matters. The relaunched world
// agrees on the latest globally consistent checkpoint cut and resumes
// from it instead of re-sorting from scratch.
//
// With -allow-shrink additionally set (requires -ckpt-dir, one-shot
// mode), losing a peer does not end the run: the survivors detect who
// died, re-form a smaller world over the live fabric, redistribute the
// dead rank's checkpointed shards among themselves, and finish the sort
// from the last consistent cut, exiting 5 instead of 3. Pair it with a
// finite -recv-timeout so a survivor blocked on the dead rank fails out
// of the sort instead of waiting forever. If the shrink itself cannot
// proceed (no cut, fewer than two survivors, or a second loss while
// shrinking) the process exits 3 and the ordinary relaunch contract
// applies. See shrink.go.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"sdssort/internal/algo"
	"sdssort/internal/buildinfo"
	"sdssort/internal/checkpoint"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/comm/tcpcomm"
	"sdssort/internal/core"
	"sdssort/internal/engine"
	"sdssort/internal/extsort"
	"sdssort/internal/faultnet"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/recordio"
	"sdssort/internal/telemetry"
	"sdssort/internal/trace"
	"sdssort/internal/workload"
)

// Exit codes: the supervisor contract. Keep in sync with the package
// comment and docs/INTERNALS.md.
const (
	exitOK         = 0
	exitLocalError = 1
	exitUsage      = 2
	exitPeerLost   = 3
	exitDeadline   = 4
	exitDegraded   = 5
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// exitCode classifies an error into the exit-code contract.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	if _, ok := comm.PeerLost(err); ok {
		return exitPeerLost
	}
	return exitLocalError
}

// jobParams is one job's resolved parameters, from flags (one-shot) or
// from a NodeJob spec merged over the flag defaults (-serve).
type jobParams struct {
	name     string
	workload string
	alpha    float64
	n        int
	seed     int64
	in, out  string
	stable   bool
	stage    int64
	algo     string
}

// withSpec overlays a job spec on the flag defaults for one rank.
func (p jobParams) withSpec(jb engine.NodeJob, rank int) jobParams {
	p.name = jb.Name
	if jb.Workload != "" {
		p.workload = jb.Workload
	}
	if jb.Alpha != 0 {
		p.alpha = jb.Alpha
	}
	if jb.N > 0 {
		p.n = jb.N
	}
	if jb.Seed != 0 {
		p.seed = jb.Seed
	}
	p.in = jb.In
	p.out = jb.OutPath(rank)
	p.stable = p.stable || jb.Stable
	if jb.Stage > 0 {
		p.stage = jb.Stage
	}
	if jb.Algo != "" {
		p.algo = jb.Algo
	}
	return p
}

// checkAlgo validates one job's driver choice against the registry and
// its capability gates, so a bad manifest fails before the fabric boots.
func (p jobParams) checkAlgo(ckpt bool) error {
	info, ok := algo.Lookup(p.algo)
	if !ok {
		return &algo.UnknownError{Name: p.algo}
	}
	if p.stable && !info.Caps.Stable {
		return fmt.Errorf("driver %q does not support -stable (only: sds)", p.algo)
	}
	if ckpt && !info.Caps.Checkpoint {
		return fmt.Errorf("driver %q does not support -ckpt-dir (only: sds)", p.algo)
	}
	return nil
}

// nodeEnv carries the per-process observability plumbing every job of
// this rank shares: the trace sinks, the exported memory gauge and
// exchange stats, and the node-level job counters.
type nodeEnv struct {
	tracer trace.Tracer
	gauge  *memlimit.Gauge
	exch   *metrics.ExchangeStats

	// skew accrues the per-phase load-imbalance diagnostics every sort
	// of this rank observes, exported as the sds_phase_imbalance_* and
	// sds_phase_straggler_total series. Always non-nil: the observation
	// is collective, and every sdsnode wires it, so the world agrees.
	skew *metrics.SkewStats

	// algoStats counts the resolved driver of every sort (a job under
	// -algo auto increments the profile's choice), exported as
	// sds_algo_selected_total.
	algoStats *metrics.AlgoStats

	// Out-of-core spill tier (nil without -spill-dir): shared by every
	// job of this rank so a budgeted sort that cannot hold its receive
	// volume degrades to disk instead of failing.
	spill      *core.SpillOptions
	spillStats *metrics.SpillStats

	jobsDone, jobsFailed atomic.Int64
	jobSeconds           *telemetry.Histogram

	// Degraded-mode state, flipped by a successful shrink and surfaced
	// through /healthz.
	degraded  atomic.Bool
	worldSize atomic.Int64
}

func (e *nodeEnv) finishJob(elapsed time.Duration, failed bool) {
	if failed {
		e.jobsFailed.Add(1)
	} else {
		e.jobsDone.Add(1)
	}
	if e.jobSeconds != nil {
		e.jobSeconds.Observe(elapsed.Seconds())
	}
}

func run(args []string) (code int) {
	log.SetFlags(0)
	fs := flag.NewFlagSet("sdsnode", flag.ContinueOnError)
	var (
		rank     = fs.Int("rank", -1, "this process's rank (0..size-1, required)")
		size     = fs.Int("size", 0, "total ranks (required)")
		node     = fs.Int("node", -1, "physical node id (default: rank)")
		registry = fs.String("registry", "127.0.0.1:7777", "bootstrap registry address (rank 0 binds it)")
		listen   = fs.String("listen", "127.0.0.1:0", "data listener bind address")
		wl       = fs.String("workload", "zipf", "generated shard: uniform | zipf | any preset ("+strings.Join(workload.PresetNames(), " | ")+")")
		algoName = fs.String("algo", "sds", "sorting driver: "+strings.Join(algo.Names(), " | "))
		alpha    = fs.Float64("alpha", 1.4, "Zipf exponent")
		n        = fs.Int("n", 100_000, "records per rank when generating")
		in       = fs.String("in", "", "read this rank's shard from a float64 record file instead")
		out      = fs.String("out", "", "write the sorted shard here")
		stable   = fs.Bool("stable", false, "stable sort")
		stage    = fs.Int64("stage", 0, "staging window for the data exchange in bytes (0 = monolithic all-to-all)")
		seed     = fs.Int64("seed", 1, "workload seed (combined with rank)")
		timeout  = fs.Duration("timeout", 30*time.Second, "bootstrap timeout")

		serve    = fs.Bool("serve", false, "serve a stream of jobs over the warm fabric instead of one sort")
		jobsPath = fs.String("jobs", "", "job manifest for -serve, one JSON spec per line (default: stdin)")

		telAddr = fs.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/pprof and /debug/trace on this address (e.g. :9090); rank 0 also serves fabric-wide totals")
		trc     = fs.String("trace", "", "write JSONL trace events here; the first write error fails the run")
		memB    = fs.Int64("mem", 0, "per-process memory budget in bytes, reserved against by sorts and exported at /metrics (0 = unlimited, untracked)")

		spillDir   = fs.String("spill-dir", "", "enable the out-of-core spill tier here: budgeted sorts spill sorted runs to disk instead of failing, and a one-shot -in sort streams the shard without ever holding it resident")
		spillChunk = fs.Int("spill-chunk", 0, "records per spilled in-memory run (0 = derive from -mem)")

		epoch    = fs.Int("epoch", 0, "recovery epoch; rank 0's value is authoritative and adopted by all ranks")
		ckptDir  = fs.String("ckpt-dir", "", "checkpoint directory shared by all ranks; enables phase snapshots and resume (one-shot mode only)")
		shrink   = fs.Bool("allow-shrink", false, "on losing a peer, finish the sort on the survivors from the last checkpoint cut instead of exiting 3 (requires -ckpt-dir; exits 5 on degraded success)")
		deadline = fs.Duration("job-deadline", 0, "kill the process after this per-job wall-clock budget (0 = none)")

		ckptSync = fs.Bool("ckpt-sync", false, "commit checkpoints synchronously at each phase boundary instead of on the background writer (durable-at-boundary; slower)")

		// Fault-injection harness, for recovery drills and the
		// multi-process end-to-end tests: every rank of the world must
		// pass -fault-wrap (the injected framing is world-wide), and a
		// victim additionally names itself and its trigger file. The
		// kill is hard — the process exits 137 mid-operation, a SIGKILL
		// as far as the fabric is concerned.
		faultWrap     = fs.Bool("fault-wrap", false, "wrap the transport in the deterministic fault-injection harness (all ranks must agree on this flag)")
		faultKillRank = fs.Int("fault-kill-rank", -1, "fault harness: world rank to kill (requires -fault-wrap; -1 = nobody)")
		faultKillFile = fs.String("fault-kill-after-file", "", "fault harness: the kill fires on the victim's first transport operation after this file exists")

		version = fs.Bool("version", false, "print the build version and exit")

		retries   = fs.Int("retries", 5, "per-frame send attempts before declaring the peer lost")
		retryBase = fs.Duration("retry-base", 2*time.Millisecond, "initial send retry backoff (doubles per attempt)")
		retryMax  = fs.Duration("retry-max", 250*time.Millisecond, "send retry backoff cap")
		sendTO    = fs.Duration("send-timeout", 30*time.Second, "per-frame connection write deadline")
		recvTO    = fs.Duration("recv-timeout", 0, "receive failure-detector timeout (0 = wait forever, as MPI does)")
		gapTO     = fs.Duration("gap-timeout", 5*time.Second, "how long a sequence gap may persist after a reconnect before the peer is declared lost")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *version {
		fmt.Println(buildinfo.String("sdsnode"))
		return exitOK
	}
	if *rank < 0 || *size <= 0 || *rank >= *size {
		log.Printf("sdsnode: need -rank in [0,%d) and -size > 0", *size)
		return exitUsage
	}
	if *epoch < 0 {
		log.Printf("sdsnode: negative -epoch %d", *epoch)
		return exitUsage
	}
	if *serve && *ckptDir != "" {
		log.Printf("sdsnode: -ckpt-dir is not supported with -serve (checkpointed recovery is per one-shot job)")
		return exitUsage
	}
	if *shrink && *ckptDir == "" {
		log.Printf("sdsnode: -allow-shrink needs -ckpt-dir (the survivors resume from the checkpointed cut)")
		return exitUsage
	}
	if err := (jobParams{stable: *stable, algo: *algoName}).checkAlgo(*ckptDir != ""); err != nil {
		log.Printf("sdsnode: %v", err)
		return exitUsage
	}
	if *spillDir != "" && *in != "" && *algoName != algo.NameSDS {
		log.Printf("sdsnode: the fully out-of-core -in streaming path requires -algo sds")
		return exitUsage
	}
	log.SetPrefix(fmt.Sprintf("sdsnode[%d]: ", *rank))
	nodeID := *node
	if nodeID < 0 {
		nodeID = *rank
	}

	// In -serve mode the manifest is validated before the expensive
	// bootstrap, so a typo'd job stream fails fast with a usage error.
	var jobs []engine.NodeJob
	if *serve {
		var r io.Reader = os.Stdin
		if *jobsPath != "" {
			f, err := os.Open(*jobsPath)
			if err != nil {
				log.Printf("jobs: %v", err)
				return exitUsage
			}
			defer f.Close()
			r = f
		}
		var err error
		jobs, err = engine.DecodeJobs(r)
		if err != nil {
			log.Printf("jobs: %v", err)
			return exitUsage
		}
		if len(jobs) == 0 {
			log.Printf("jobs: empty job stream")
			return exitUsage
		}
		// Per-job driver choices fail here, before the fabric boots: a
		// desynchronised usage error mid-stream would strand the world.
		for i, jb := range jobs {
			pj := (jobParams{stable: *stable, algo: *algoName}).withSpec(jb, 0)
			if err := pj.checkAlgo(false); err != nil {
				log.Printf("jobs: job %d %q: %v", i, jb.Name, err)
				return exitUsage
			}
		}
	}

	// Trace sinks. The JSONL file's first write error is latched and
	// surfaced at exit (a silently truncated trace is worse than none);
	// the ring feeds /debug/trace when telemetry is on.
	env := &nodeEnv{
		exch:      &metrics.ExchangeStats{},
		algoStats: &metrics.AlgoStats{},
		skew:      metrics.NewSkewStats(),
	}
	if *memB > 0 {
		env.gauge = memlimit.New(*memB)
	}
	if *spillDir != "" {
		// Sweep wreckage from a previous crashed incarnation before
		// spilling new runs next to it — committed run files from live
		// handles are never TempPrefix-named, so the sweep is safe even
		// when several ranks share the directory.
		if err := extsort.RemoveStaleTemps(*spillDir); err != nil {
			log.Printf("spill: %v", err)
			return exitLocalError
		}
		env.spillStats = &metrics.SpillStats{}
		env.spill = &core.SpillOptions{Dir: *spillDir, ChunkRecords: *spillChunk, Stats: env.spillStats}
		env.spill.FitBudget(*memB)
	}
	var (
		jl        *trace.JSONL
		traceFile *os.File
		ring      *trace.Ring
		sinks     []trace.Tracer
	)
	if *trc != "" {
		f, err := os.Create(*trc)
		if err != nil {
			log.Printf("trace: %v", err)
			return exitLocalError
		}
		traceFile = f
		jl = trace.NewJSONL(f)
		sinks = append(sinks, jl)
	}
	if *telAddr != "" {
		ring = trace.NewRing(1024)
		sinks = append(sinks, ring)
	}
	env.tracer = trace.NewTee(sinks...)
	defer func() {
		// Deliberate trace finalisation: surface the first write error
		// and the close error with a non-zero exit instead of silently
		// shipping a truncated trace. (The serve-mode deadline exit
		// bypasses this defer by design — the process is wedged.)
		if jl == nil {
			return
		}
		if err := jl.Err(); err != nil {
			log.Printf("trace: write failed, %s is incomplete: %v", *trc, err)
			if code == exitOK {
				code = exitLocalError
			}
		}
		if err := traceFile.Close(); err != nil {
			log.Printf("trace: close %s: %v", *trc, err)
			if code == exitOK {
				code = exitLocalError
			}
		}
	}()

	// In one-shot mode the single sort is the job, so the per-job
	// deadline is simply absolute for the process. When it fires the
	// process is past saving — exit directly rather than threading
	// cancellation through every blocking transport call. (In -serve
	// mode the timer is armed per job instead; see serveJobs.)
	if !*serve && *deadline > 0 {
		time.AfterFunc(*deadline, func() {
			log.Printf("job deadline %v exceeded", *deadline)
			os.Exit(exitDeadline)
		})
	}

	if (*faultKillRank >= 0 || *faultKillFile != "") && !*faultWrap {
		log.Printf("sdsnode: -fault-kill-rank/-fault-kill-after-file need -fault-wrap on every rank")
		return exitUsage
	}

	tcp, err := tcpcomm.New(tcpcomm.Config{
		Rank: *rank, Size: *size, Node: nodeID, Epoch: *epoch,
		Registry: *registry, Listen: *listen, Timeout: *timeout,
		Retry: comm.RetryPolicy{
			MaxAttempts: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax,
			Seed: *seed + int64(*rank),
		},
		SendTimeout: *sendTO,
		RecvTimeout: *recvTO,
		GapTimeout:  *gapTO,
	})
	if err != nil {
		log.Printf("bootstrap: %v", err)
		return exitCode(err)
	}
	defer tcp.Close()
	var tr comm.Transport = tcp
	if *faultWrap {
		inj, err := faultnet.New(faultnet.Plan{
			Seed: *seed, KillRank: *faultKillRank,
			KillAfterFile: *faultKillFile, KillHard: true,
		})
		if err != nil {
			log.Printf("fault harness: %v", err)
			return exitUsage
		}
		tr = inj.Wrap(tr)
		if *faultKillRank == *rank {
			log.Printf("fault harness armed: this rank dies after %s exists", *faultKillFile)
		}
	}
	// The coordinator's epoch won at registration; name the world after
	// it so frames from an older incarnation are undeliverable here.
	ep := tcp.Epoch()
	worldName := "world"
	if ep > 0 {
		worldName = fmt.Sprintf("world@e%d", ep)
	}
	c := comm.NewNamed(tr, worldName)
	log.Printf("joined world of %d ranks (epoch %d)", *size, ep)
	env.worldSize.Store(int64(*size))
	// Align clocks before any spans are cut: rank 0 ping-pongs every
	// peer and broadcasts the measured offsets, and each rank records
	// its own in the trace — sdstrace subtracts it to project all
	// processes onto rank 0's timeline. Re-measured after a shrink (the
	// reformed world may elect a different rank 0; see shrink.go).
	if err := syncClocks(c, env); err != nil {
		log.Printf("clock sync: %v", err)
		return exitCode(err)
	}
	if *shrink {
		// Liveness responders must be up before the sort: after a
		// failure, survivors probe each other while some are still stuck
		// inside the dying collective.
		startProber(tr, worldName)
	}

	// Telemetry plane. Every rank builds a registry and (rank > 0)
	// parks an aggregation responder on the fabric, so a coordinator
	// scrape can sum the whole world even when only rank 0 carries
	// -telemetry-addr. The HTTP server itself is per-flag.
	reg := telemetry.NewRegistry()
	tcp.Stats().Register(reg)
	telemetry.RegisterNodeInfo(reg, *rank, *size, ep)
	buildinfo.Register(reg)
	checkpoint.RegisterMetrics(reg)
	env.exch.Register(reg)
	env.skew.Register(reg)
	env.algoStats.Register(reg, algo.Names()...)
	if env.spillStats != nil {
		env.spillStats.Register(reg)
	}
	if env.gauge != nil {
		telemetry.RegisterMem(reg, env.gauge)
	}
	reg.CounterFunc("sds_node_jobs_done_total", "Jobs this rank completed successfully.",
		func() float64 { return float64(env.jobsDone.Load()) })
	reg.CounterFunc("sds_node_jobs_failed_total", "Jobs this rank saw fail or skip.",
		func() float64 { return float64(env.jobsFailed.Load()) })
	env.jobSeconds = reg.Histogram("sds_node_job_seconds", "Wall time of this rank's jobs.", telemetry.DefaultLatencyBuckets())
	if ring != nil {
		reg.CounterFunc("sds_trace_dropped_total", "Trace events the ring buffer overwrote before they could be read.",
			telemetry.FInt(ring.Dropped))
	}
	if *rank != 0 {
		telemetry.StartResponder(tr, worldName, reg)
	}
	var agg *telemetry.Aggregator
	if *telAddr != "" {
		opts := telemetry.ServerOptions{
			Trace: ring.MarshalJSONL,
			Spans: func() any { return trace.BuildSpans(ring.Events()) },
			Health: func() telemetry.Health {
				h := telemetry.Health{
					Status: "ok", Rank: *rank, Size: *size, Epoch: ep,
					JobsDone:         env.jobsDone.Load(),
					JobsFailed:       env.jobsFailed.Load(),
					GatherAgeSeconds: -1,
				}
				if env.degraded.Load() {
					h.Degraded = true
					h.WorldSize = int(env.worldSize.Load())
				}
				if agg != nil {
					if age := agg.GatherAge(); age >= 0 {
						h.GatherAgeSeconds = age.Seconds()
					}
				}
				return h
			},
		}
		if *rank == 0 {
			agg = telemetry.NewAggregator(tr, worldName, reg, 2*time.Second)
			opts.Aggregate = func(w http.ResponseWriter) { agg.Render(w) }
		}
		srv, err := telemetry.NewServer(*telAddr, reg, opts)
		if err != nil {
			log.Printf("telemetry: %v", err)
			return exitLocalError
		}
		defer srv.Close()
		log.Printf("telemetry on http://%s", srv.Addr())
	}

	defaults := jobParams{
		workload: *wl, alpha: *alpha, n: *n, seed: *seed,
		in: *in, out: *out, stable: *stable, stage: *stage,
		algo: *algoName,
	}

	if *serve {
		return serveJobs(c, tr, worldName, *rank, *size, defaults, jobs, *deadline, env)
	}

	if *spillDir != "" && defaults.in != "" && *ckptDir == "" {
		// Fully out-of-core one-shot: the shard streams from the input
		// file through the spill tier and into the output shard without
		// ever being resident — a fixed -mem sorts inputs of any size.
		// (With -ckpt-dir the resident driver below runs instead: it
		// keeps phase snapshots and still spills its exchange under
		// pressure.)
		if code := spillSortJob(c, defaults, trace.Scope{Trace: worldName}, env); code != exitOK {
			return code
		}
		if err := c.Barrier(); err != nil {
			if lost, ok := comm.PeerLost(err); ok {
				log.Printf("final barrier: peer rank %d lost: %v", lost, err)
			} else {
				log.Printf("final barrier: %v", err)
			}
			return exitCode(err)
		}
		return exitOK
	}

	data, code := loadJobData(defaults, *rank, *size)
	if code != exitOK {
		return code
	}

	var ck *core.Checkpointing
	if *ckptDir != "" {
		store, err := checkpoint.NewStore(*ckptDir, *size)
		if err != nil {
			log.Printf("checkpoint: %v", err)
			return exitLocalError
		}
		ck = &core.Checkpointing{Store: store, Epoch: ep, Sync: *ckptSync}
		if ep > 0 {
			cut, ok, err := checkpoint.AgreeCut(c, store)
			if err != nil {
				log.Printf("checkpoint cut: %v", err)
				return exitCode(err)
			}
			if ok {
				ck.Resume = cut
				log.Printf("resuming from checkpoint %s of epoch %d", cut.Phase, cut.Epoch)
			} else {
				log.Printf("no consistent checkpoint; restarting from scratch")
			}
		}
	}

	if code := sortJob(c, defaults, data, ck, "", trace.Scope{Trace: worldName}, env); code != exitOK {
		if code == exitPeerLost && *shrink {
			return shrinkAndResume(tr, worldName, ep, *ckptDir, defaults, ck, env, agg)
		}
		return code
	}
	// Leave together: a final barrier keeps rank 0's process alive
	// until everyone has finished sending.
	if err := c.Barrier(); err != nil {
		if lost, ok := comm.PeerLost(err); ok {
			log.Printf("final barrier: peer rank %d lost: %v", lost, err)
			// A rank that died between its last send and the farewell
			// barrier is still a loss the survivors can absorb: the
			// final cut is checkpointed, so the shrink re-derives the
			// dead rank's output shard onto the survivors.
			if *shrink {
				return shrinkAndResume(tr, worldName, ep, *ckptDir, defaults, ck, env, agg)
			}
		} else {
			log.Printf("final barrier: %v", err)
		}
		return exitCode(err)
	}
	return exitOK
}

// serveJobs is the -serve loop: each job of the stream runs on its own
// communicator attached to the warm fabric under the agreed per-job
// name. A job whose input cannot be loaded is skipped by the whole
// world in lockstep (a one-int agreement round precedes every sort), so
// one bad manifest entry degrades that job, not the stream; errors
// inside a collective sort are fatal to the process, as they are in
// one-shot mode, because a desynchronised rank cannot rejoin.
func serveJobs(world *comm.Comm, tr comm.Transport, worldName string, rank, size int, defaults jobParams, jobs []engine.NodeJob, defDeadline time.Duration, env *nodeEnv) int {
	worst := exitOK
	for i, jb := range jobs {
		p := defaults.withSpec(jb, rank)
		dl, err := jb.DeadlineDuration(defDeadline)
		if err != nil { // pre-validated by DecodeJobs; belt and braces
			log.Printf("job %d: %v", i, err)
			return exitUsage
		}
		// The job's communicator: same fabric, fresh message context.
		// Attach never owns the transport, so dropping the comm after
		// the job cannot disturb its siblings.
		jc := comm.Attach(tr, engine.JobCommName(worldName, i))

		// Per-job deadline: the clock starts when the job starts, not
		// at process launch, and is disarmed the moment the job
		// completes — ten quick jobs never accumulate into an overrun.
		var timer *time.Timer
		if dl > 0 {
			jobDL := dl
			name := p.name
			timer = time.AfterFunc(jobDL, func() {
				log.Printf("job %q deadline %v exceeded", name, jobDL)
				os.Exit(exitDeadline)
			})
		}

		data, loadCode := loadJobData(p, rank, size)
		if loadCode == exitUsage {
			return exitUsage
		}
		// Agree to run: if any rank failed to load the job's input, the
		// whole world skips the job together instead of deadlocking the
		// healthy ranks in a sort the broken rank never joins.
		ok := int64(1)
		if loadCode != exitOK {
			ok = 0
		}
		agreed, err := jc.AllreduceInt64(ok, func(a, b int64) int64 { return min(a, b) })
		if err != nil {
			log.Printf("job %q: readiness agreement: %v", p.name, err)
			return exitCode(err)
		}
		if agreed == 0 {
			if timer != nil {
				timer.Stop()
			}
			log.Printf("job %d/%d %q skipped (input unavailable on some rank)", i+1, len(jobs), p.name)
			env.jobsFailed.Add(1)
			worst = exitLocalError
			continue
		}

		sc := trace.Scope{Trace: engine.JobCommName(worldName, i), Job: p.name}
		if code := sortJob(jc, p, data, nil, fmt.Sprintf("job %d/%d %q: ", i+1, len(jobs), p.name), sc, env); code != exitOK {
			// A failed collective leaves this rank desynchronised from
			// the stream; stop here rather than corrupt later jobs.
			return code
		}
		if timer != nil {
			timer.Stop()
		}
		log.Printf("job %d/%d %q done", i+1, len(jobs), p.name)
	}
	// Leave together, exactly as one-shot mode does.
	if err := world.Barrier(); err != nil {
		if lost, ok := comm.PeerLost(err); ok {
			log.Printf("final barrier: peer rank %d lost: %v", lost, err)
		} else {
			log.Printf("final barrier: %v", err)
		}
		return exitCode(err)
	}
	return worst
}

// loadJobData produces this rank's shard for one job: read from the
// job's input file or generated. It returns a non-OK exit code instead
// of data when the job cannot start locally.
func loadJobData(p jobParams, rank, size int) ([]float64, int) {
	if p.in != "" {
		// Each rank seeks directly to its shard of the shared file.
		data, err := recordio.ReadShard(p.in, codec.Float64{}, rank, size)
		if err != nil {
			log.Print(err)
			return nil, exitLocalError
		}
		return data, exitOK
	}
	switch p.workload {
	case "uniform":
		return workload.Uniform(p.seed+int64(rank)*997, p.n), exitOK
	case "zipf":
		// Explicit case so -alpha keeps steering the exponent; the
		// preset of the same name pins the paper's α=1.4.
		return workload.ZipfKeys(p.seed+int64(rank)*997, p.n, p.alpha, workload.DefaultZipfUniverse), exitOK
	default:
		if pre, ok := workload.LookupPreset(p.workload); ok {
			return pre.Gen(p.seed+int64(rank)*997, p.n), exitOK
		}
		log.Printf("unknown workload %q (presets: %s)", p.workload, strings.Join(workload.PresetNames(), " | "))
		return nil, exitUsage
	}
}

// sortJob runs one collective sort on c with per-job metrics, reports
// the phase breakdown, and writes the output shard when requested.
// Every log line is prefixed with label so interleaved jobs of a served
// stream stay attributable.
func sortJob(c *comm.Comm, p jobParams, data []float64, ck *core.Checkpointing, label string, sc trace.Scope, env *nodeEnv) int {
	aopt := algo.DefaultOptions()
	aopt.Core.Stable = p.stable
	aopt.Core.StageBytes = p.stage
	aopt.Core.Span = sc
	aopt.Core.Skew = env.skew
	// The exchange stats are shared across the process's jobs so the
	// telemetry plane exports them live (in particular the staging
	// window gauge mid-exchange); the log line below is therefore
	// cumulative in -serve mode. Wired unconditionally: the zero-copy
	// counters are meaningful for the monolithic exchange too.
	exch := env.exch
	aopt.Core.Exchange = exch
	aopt.Core.Mem = env.gauge
	aopt.Core.Spill = env.spill
	aopt.Core.Trace = env.tracer
	tm := metrics.NewPhaseTimer()
	aopt.Core.Timer = tm
	if ck != nil {
		aopt.Core.Checkpoint = ck
	}
	aopt.Selection = env.algoStats
	drv, err := algo.New[float64](p.algo)
	if err != nil { // pre-validated; belt and braces
		log.Printf("%s%v", label, err)
		return exitUsage
	}

	start := time.Now()
	sorted, err := drv.Sort(context.Background(), c, data, codec.Float64{}, cmpF, aopt)
	if err != nil {
		env.finishJob(time.Since(start), true)
		if lost, ok := comm.PeerLost(err); ok {
			// Degrade with a clear verdict rather than a hang: the
			// retry budget for this peer is spent, the run is dead.
			log.Printf("%ssort: peer rank %d lost (retry budget exhausted): %v", label, lost, err)
		} else {
			log.Printf("%ssort: %v", label, err)
		}
		return exitCode(err)
	}
	elapsed := time.Since(start)
	// Snapshots commit in the background; make them durable before
	// claiming success — the next epoch's resume depends on them.
	if err := ck.Wait(); err != nil {
		log.Printf("%scheckpoint: %v", label, err)
		env.finishJob(elapsed, true)
		return exitLocalError
	}
	env.finishJob(elapsed, false)
	log.Printf("%sdone in %v: %d records held locally", label, elapsed.Round(time.Millisecond), len(sorted))
	for _, ph := range metrics.Phases() {
		log.Printf("  %-16s %s", ph.String(), metrics.FmtDur(tm.Get(ph)))
	}
	if exch != nil {
		log.Printf("  %s", exch)
		zc := "no"
		if exch.ZeroCopyUsed() {
			zc = "yes"
		}
		log.Printf("  zero-copy: %s", zc)
	}
	if env.spillStats != nil && env.spillStats.Spilled() {
		log.Printf("  %s", env.spillStats)
	}

	if p.out != "" {
		if err := recordio.WriteFile(p.out, codec.Float64{}, sorted); err != nil {
			log.Print(err)
			return exitLocalError
		}
		log.Printf("%swrote %s", label, p.out)
	}
	return exitOK
}

// spillSortJob is the out-of-core one-shot: this rank's shard of p.in
// streams through core.SortFileShard — sorted runs spill under the
// spill dir, the exchange lands run files, and the resulting block is
// lazily merged straight into the output shard. Peak memory is the
// spill tier's working set, not the shard.
func spillSortJob(c *comm.Comm, p jobParams, sc trace.Scope, env *nodeEnv) int {
	opt := core.DefaultOptions()
	opt.Stable = p.stable
	opt.StageBytes = p.stage
	opt.Span = sc
	opt.Skew = env.skew
	opt.Exchange = env.exch
	opt.Mem = env.gauge
	opt.Spill = env.spill
	opt.Trace = env.tracer
	tm := metrics.NewPhaseTimer()
	opt.Timer = tm

	start := time.Now()
	blk, err := core.SortFileShard(c, p.in, codec.Float64{}, cmpF, opt)
	if err != nil {
		env.finishJob(time.Since(start), true)
		if lost, ok := comm.PeerLost(err); ok {
			log.Printf("spill sort: peer rank %d lost (retry budget exhausted): %v", lost, err)
		} else {
			log.Printf("spill sort: %v", err)
		}
		return exitCode(err)
	}
	defer blk.Remove()
	elapsed := time.Since(start)
	env.finishJob(elapsed, false)
	log.Printf("done in %v: %d records spilled locally", elapsed.Round(time.Millisecond), blk.Records())
	for _, ph := range metrics.Phases() {
		log.Printf("  %-16s %s", ph.String(), metrics.FmtDur(tm.Get(ph)))
	}
	log.Printf("  %s", env.exch)
	log.Printf("  %s", env.spillStats)
	if env.gauge != nil {
		log.Printf("  mem peak: %d of %d bytes", env.gauge.Peak(), env.gauge.Budget())
	}

	if p.out != "" {
		// Committed by rename, like every other output in the spill
		// tier: a crash mid-merge never leaves a truncated shard behind.
		// A non-regular destination (/dev/null, a pipe) cannot take the
		// rename commit — renaming over it would replace the node
		// itself — so those are streamed into directly.
		var dst *os.File
		var err error
		rename := false
		if st, serr := os.Lstat(p.out); serr == nil && !st.Mode().IsRegular() {
			dst, err = os.OpenFile(p.out, os.O_WRONLY, 0)
		} else {
			dst, err = os.CreateTemp(filepath.Dir(p.out), ".sdsnode-out-*")
			rename = true
		}
		if err != nil {
			log.Print(err)
			return exitLocalError
		}
		err = blk.Stream(dst)
		if cerr := dst.Close(); err == nil {
			err = cerr
		}
		if rename {
			if err == nil {
				err = os.Chmod(dst.Name(), 0o644)
			}
			if err == nil {
				err = os.Rename(dst.Name(), p.out)
			}
		}
		if err != nil {
			if rename {
				os.Remove(dst.Name())
			}
			log.Print(err)
			return exitLocalError
		}
		log.Printf("wrote %s", p.out)
	}
	return exitOK
}

// syncClocks aligns this world's clocks (collective — every rank calls
// it) and records each rank's measured offset from rank 0 as a
// clock.offset trace event, the anchor sdstrace -format chrome and the
// multi-file merge use to place all processes on one timeline.
func syncClocks(c *comm.Comm, env *nodeEnv) error {
	cs, err := c.SyncClocks(0)
	if err != nil {
		return err
	}
	rank := c.Rank()
	d := map[string]any{"offset_us": cs.Offset(rank), "world": c.Size()}
	if rank < len(cs.RTTs) {
		d["rtt_us"] = cs.RTTs[rank]
	}
	env.tracer.Emit(rank, trace.KindClockOffset, d)
	return nil
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
