// Command sdsnode runs one rank of a genuinely distributed SDS-Sort
// over the TCP transport. Start one process per rank; rank 0 also
// serves the bootstrap registry.
//
// Example, 4 ranks on one machine (run in 4 shells or with &):
//
//	sdsnode -rank 0 -size 4 -registry 127.0.0.1:7777 -n 100000 &
//	sdsnode -rank 1 -size 4 -registry 127.0.0.1:7777 -n 100000 &
//	sdsnode -rank 2 -size 4 -registry 127.0.0.1:7777 -n 100000 &
//	sdsnode -rank 3 -size 4 -registry 127.0.0.1:7777 -n 100000
//
// Each rank either generates its shard (-workload) or reads it from a
// file (-in). The sorted shard can be written with -out; the run's
// timing and final load are printed either way.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/comm/tcpcomm"
	"sdssort/internal/core"
	"sdssort/internal/metrics"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		rank     = flag.Int("rank", -1, "this process's rank (0..size-1, required)")
		size     = flag.Int("size", 0, "total ranks (required)")
		node     = flag.Int("node", -1, "physical node id (default: rank)")
		registry = flag.String("registry", "127.0.0.1:7777", "bootstrap registry address (rank 0 binds it)")
		listen   = flag.String("listen", "127.0.0.1:0", "data listener bind address")
		wl       = flag.String("workload", "zipf", "generated shard: uniform | zipf")
		alpha    = flag.Float64("alpha", 1.4, "Zipf exponent")
		n        = flag.Int("n", 100_000, "records per rank when generating")
		in       = flag.String("in", "", "read this rank's shard from a float64 record file instead")
		out      = flag.String("out", "", "write the sorted shard here")
		stable   = flag.Bool("stable", false, "stable sort")
		seed     = flag.Int64("seed", 1, "workload seed (combined with rank)")
		timeout  = flag.Duration("timeout", 30*time.Second, "bootstrap timeout")

		retries   = flag.Int("retries", 5, "per-frame send attempts before declaring the peer lost")
		retryBase = flag.Duration("retry-base", 2*time.Millisecond, "initial send retry backoff (doubles per attempt)")
		retryMax  = flag.Duration("retry-max", 250*time.Millisecond, "send retry backoff cap")
		sendTO    = flag.Duration("send-timeout", 30*time.Second, "per-frame connection write deadline")
		recvTO    = flag.Duration("recv-timeout", 0, "receive failure-detector timeout (0 = wait forever, as MPI does)")
		gapTO     = flag.Duration("gap-timeout", 5*time.Second, "how long a sequence gap may persist after a reconnect before the peer is declared lost")
	)
	flag.Parse()
	if *rank < 0 || *size <= 0 || *rank >= *size {
		log.Fatalf("sdsnode: need -rank in [0,%d) and -size > 0", *size)
	}
	log.SetPrefix(fmt.Sprintf("sdsnode[%d]: ", *rank))
	nodeID := *node
	if nodeID < 0 {
		nodeID = *rank
	}

	tr, err := tcpcomm.New(tcpcomm.Config{
		Rank: *rank, Size: *size, Node: nodeID,
		Registry: *registry, Listen: *listen, Timeout: *timeout,
		Retry: comm.RetryPolicy{
			MaxAttempts: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax,
			Seed: *seed + int64(*rank),
		},
		SendTimeout: *sendTO,
		RecvTimeout: *recvTO,
		GapTimeout:  *gapTO,
	})
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	defer tr.Close()
	c := comm.New(tr)
	log.Printf("joined world of %d ranks", *size)

	var data []float64
	if *in != "" {
		// Each rank seeks directly to its shard of the shared file.
		data, err = recordio.ReadShard(*in, codec.Float64{}, *rank, *size)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		switch *wl {
		case "uniform":
			data = workload.Uniform(*seed+int64(*rank)*997, *n)
		case "zipf":
			data = workload.ZipfKeys(*seed+int64(*rank)*997, *n, *alpha, workload.DefaultZipfUniverse)
		default:
			log.Fatalf("unknown workload %q", *wl)
		}
	}

	opt := core.DefaultOptions()
	opt.Stable = *stable
	tm := metrics.NewPhaseTimer()
	opt.Timer = tm
	start := time.Now()
	sorted, err := core.Sort(c, data, codec.Float64{}, cmpF, opt)
	if err != nil {
		if lost, ok := comm.PeerLost(err); ok {
			// Degrade with a clear verdict rather than a hang: the
			// retry budget for this peer is spent, the run is dead.
			log.Fatalf("sort: peer rank %d lost (retry budget exhausted): %v", lost, err)
		}
		log.Fatalf("sort: %v", err)
	}
	elapsed := time.Since(start)
	log.Printf("done in %v: %d records held locally", elapsed.Round(time.Millisecond), len(sorted))
	for _, ph := range metrics.Phases() {
		log.Printf("  %-16s %s", ph.String(), metrics.FmtDur(tm.Get(ph)))
	}

	if *out != "" {
		if err := recordio.WriteFile(*out, codec.Float64{}, sorted); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	// Leave together: a final barrier keeps rank 0's process alive
	// until everyone has finished sending.
	if err := c.Barrier(); err != nil {
		if lost, ok := comm.PeerLost(err); ok {
			log.Fatalf("final barrier: peer rank %d lost: %v", lost, err)
		}
		log.Fatalf("final barrier: %v", err)
	}
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
