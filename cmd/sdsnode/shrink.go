// Degraded-mode resume for one-shot checkpointed runs (-allow-shrink):
// when a peer rank dies mid-sort, the survivors agree on who is gone,
// re-form a smaller world over the still-live TCP fabric, redistribute
// the dead rank's checkpointed shards among themselves, and finish the
// sort — exiting 5 (degraded success) instead of 3 (restart me).
//
// The agreement protocol is deliberately thin. Every rank parks a probe
// responder from process start; after a sort failure each survivor
// pings every other rank and treats a send failure or reply timeout as
// "dead". Survivors that disagree on the death list build shrunken
// worlds with different member signatures, so their first collective
// times out instead of cross-talking, and the run falls back to the
// exit-3 full-relaunch contract — a wrong guess costs a restart, never
// a wrong answer.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"sdssort/internal/checkpoint"
	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/telemetry"
	"sdssort/internal/trace"
)

const (
	tagProbeReq = 21
	tagProbeRep = 22

	// probeTimeout bounds each liveness ping. Responders answer from a
	// dedicated goroutine regardless of what the rank is computing, so
	// a live peer answers in network round-trip time.
	probeTimeout = 2 * time.Second
	// reformTimeout bounds the shrunken world's first barrier. It must
	// cover the skew between survivors noticing the death — a survivor
	// blocked on a receive from the dead rank only fails out when its
	// -recv-timeout or -gap-timeout fires.
	reformTimeout = 30 * time.Second
)

// startProber parks the liveness responder: one goroutine per peer,
// answering probe pings for the life of the transport. Started on every
// rank of an -allow-shrink run, before the sort.
func startProber(tr comm.Transport, worldName string) {
	c := comm.Attach(tr, worldName+"/probe")
	for p := 0; p < tr.Size(); p++ {
		if p == tr.Rank() {
			continue
		}
		go func(p int) {
			for {
				if _, err := c.Recv(p, tagProbeReq); err != nil {
					// An idle probe channel trips the transport's
					// receive failure detector (-recv-timeout) long
					// before any probe arrives; that is routine, not a
					// reason to stop answering. Re-arm with a pause so
					// a persistent error (transport closed, peer gone)
					// cannot spin; the goroutine dies with the process.
					time.Sleep(50 * time.Millisecond)
					continue
				}
				if err := c.Send(p, tagProbeRep, nil); err != nil {
					return
				}
			}
		}(p)
	}
}

// probeWorld pings every other rank in parallel and returns the ranks
// that failed to answer, ascending.
func probeWorld(tr comm.Transport, worldName string) []int {
	c := comm.Attach(tr, worldName+"/probe")
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lost []int
	)
	for p := 0; p < tr.Size(); p++ {
		if p == tr.Rank() {
			continue
		}
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if !probeRank(c, p) {
				mu.Lock()
				lost = append(lost, p)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	sort.Ints(lost)
	return lost
}

// probeRank sends one ping and waits for the pong with a timeout. The
// abandoned receive goroutine of a timed-out probe is harmless: the
// process either exits soon or the peer really is dead.
func probeRank(c *comm.Comm, p int) bool {
	if err := c.Send(p, tagProbeReq, nil); err != nil {
		return false
	}
	pong := make(chan error, 1)
	go func() {
		_, err := c.Recv(p, tagProbeRep)
		pong <- err
	}()
	select {
	case err := <-pong:
		return err == nil
	case <-time.After(probeTimeout):
		return false
	}
}

// shrinkAndResume is the degraded-mode path taken after a one-shot
// checkpointed sort lost a peer: probe out the dead, re-form the world
// on the survivors, rebuild the last consistent cut for the smaller
// world, and run the sort to completion from it. Returns the process
// exit code: exitDegraded on success, exitPeerLost when the world
// cannot shrink (no cut, too few survivors, membership disagreement) —
// the caller's supervisor then takes the ordinary full-relaunch path.
func shrinkAndResume(tr comm.Transport, worldName string, ep int, ckptDir string, p jobParams, ck *core.Checkpointing, env *nodeEnv, agg *telemetry.Aggregator) int {
	// Settle this rank's store before anyone reads it: the snapshot
	// writer may still be committing the very cut we resume from.
	if err := ck.Wait(); err != nil {
		log.Printf("shrink: draining checkpoints: %v", err)
	}

	lost := probeWorld(tr, worldName)
	if len(lost) == 0 {
		log.Printf("shrink: every rank answered the probe; nothing to shrink away")
		return exitPeerLost
	}
	survivors := make([]int, 0, tr.Size()-len(lost))
	dead := make(map[int]bool, len(lost))
	for _, r := range lost {
		dead[r] = true
	}
	for r := 0; r < tr.Size(); r++ {
		if !dead[r] {
			survivors = append(survivors, r)
		}
	}
	if len(survivors) < 2 {
		log.Printf("shrink: only %d survivor(s); a distributed sort needs 2", len(survivors))
		return exitPeerLost
	}
	log.Printf("shrink: ranks %v are gone; re-forming world on %v", lost, survivors)
	env.tracer.Emit(tr.Rank(), "node.shrink", map[string]any{
		"lost": lost, "world": len(survivors), "epoch": ep + 1,
	})

	// The shrunken world's name carries the epoch and the size; the
	// member list is folded in by Reform, so survivors that disagree on
	// who died can never exchange a frame.
	newEpoch := ep + 1
	name := fmt.Sprintf("world@e%ds%d", newEpoch, len(survivors))
	c, err := cluster.Reform(tr, name, survivors, reformTimeout)
	if err != nil {
		log.Printf("shrink: %v", err)
		return exitPeerLost
	}
	// Re-measure clock offsets on the reformed world: ranks renumber,
	// and the shrunken world's rank 0 — the new timeline origin — may be
	// a different host than the one that measured at boot.
	if err := syncClocks(c, env); err != nil {
		log.Printf("shrink: clock sync: %v", err)
		return exitCode(err)
	}

	// The new coordinator rebuilds the last consistent full-world cut
	// for the shrunken world; everyone then adopts it (or learns there
	// is none) through the usual cut agreement. Redistribute errors are
	// logged, not returned: AgreeCut finding no cut is the one
	// consistent way for the whole world to give up together.
	shrunk, err := checkpoint.NewStore(ckptDir, c.Size())
	if err != nil {
		log.Printf("shrink: %v", err)
		return exitLocalError
	}
	if c.Rank() == 0 {
		full, err := checkpoint.NewStore(ckptDir, tr.Size())
		if err != nil {
			log.Printf("shrink: %v", err)
		} else if cut, ok := full.LatestConsistent(); !ok {
			log.Printf("shrink: no consistent checkpoint cut to redistribute")
		} else if _, ncut, err := checkpoint.Redistribute(full, cut, lost, newEpoch, codec.Float64{}, cmpF); err != nil {
			log.Printf("shrink: redistribute: %v", err)
		} else {
			log.Printf("shrink: rebuilt %s cut of epoch %d for %d ranks", ncut.Phase, cut.Epoch, c.Size())
		}
	}
	cut, ok, err := checkpoint.AgreeCut(c, shrunk)
	if err != nil {
		log.Printf("shrink: cut agreement: %v", err)
		return exitCode(err)
	}
	if !ok {
		log.Printf("shrink: no resumable cut for the shrunken world; a full relaunch is needed")
		return exitPeerLost
	}
	log.Printf("resuming degraded from checkpoint %s on %d of %d ranks (rank %d -> %d)",
		cut.Phase, c.Size(), tr.Size(), tr.Rank(), c.Rank())

	// Flip the health plane before the long part, so a scrape during
	// the degraded sort already reports the shrunken world.
	env.worldSize.Store(int64(len(survivors)))
	env.degraded.Store(true)
	if agg != nil {
		for _, r := range lost {
			agg.MarkLost(r)
		}
	}

	// The degraded sort starts with no local input: every record of the
	// resumed run comes out of the redistributed store.
	nck := &core.Checkpointing{Store: shrunk, Epoch: newEpoch, Resume: cut, Sync: ck.Sync}
	if code := sortJob(c, p, nil, nck, "degraded: ", trace.Scope{Trace: name}, env); code != exitOK {
		return code
	}
	if err := c.Barrier(); err != nil {
		log.Printf("shrink: final barrier: %v", err)
		return exitCode(err)
	}
	return exitDegraded
}
