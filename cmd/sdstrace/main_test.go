package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("SDSTRACE_CLI_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SDSTRACE_CLI_CHILD=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestSummariseTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	lines := strings.Join([]string{
		`{"seq":1,"elapsed_us":0,"rank":0,"kind":"sort.start","detail":{"records":10}}`,
		`{"seq":2,"elapsed_us":50,"rank":0,"kind":"exchange.plan","detail":{"recv_records":10}}`,
		`{"seq":3,"elapsed_us":90,"rank":0,"kind":"sort.done"}`,
	}, "\n")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "3 events") || !strings.Contains(out, "exchange: 10 records") {
		t.Fatalf("summary:\n%s", out)
	}
}

func TestBadArgs(t *testing.T) {
	if out, err := runCLI(t); err == nil {
		t.Fatalf("no-arg run accepted:\n%s", out)
	}
	if out, err := runCLI(t, "/nonexistent.jsonl"); err == nil {
		t.Fatalf("missing file accepted:\n%s", out)
	}
}

func TestMergeMultipleTraces(t *testing.T) {
	dir := t.TempDir()
	r0 := filepath.Join(dir, "rank0.jsonl")
	r1 := filepath.Join(dir, "rank1.jsonl")
	if err := os.WriteFile(r0, []byte(strings.Join([]string{
		`{"seq":1,"elapsed_us":0,"rank":0,"kind":"sort.start","detail":{"records":10}}`,
		`{"seq":2,"elapsed_us":40,"rank":0,"kind":"exchange.plan","detail":{"recv_records":6}}`,
		`{"seq":3,"elapsed_us":90,"rank":0,"kind":"sort.done","detail":{"reason":"completed"}}`,
	}, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(r1, []byte(strings.Join([]string{
		`{"seq":1,"elapsed_us":5,"rank":1,"kind":"sort.start","detail":{"records":10}}`,
		`{"seq":2,"elapsed_us":45,"rank":1,"kind":"exchange.plan","detail":{"recv_records":4}}`,
		`{"seq":3,"elapsed_us":80,"rank":1,"kind":"sort.done","detail":{"reason":"follower"}}`,
	}, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, r0, r1)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"6 events across 2 ranks",
		"exchange: 10 records",
		"sorts: 2 started, 2 completed",
		"done reasons: completed=1 follower=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestMergeRejectsBadFileAmongMany(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.jsonl")
	if err := os.WriteFile(good, []byte(`{"seq":1,"elapsed_us":0,"rank":0,"kind":"sort.start"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := runCLI(t, good, filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatalf("missing second file accepted:\n%s", out)
	}
}
