// Command sdstrace summarises a JSONL event trace produced by
// cmd/sdssort -trace (or sdssort.TraceJSON): event counts per kind,
// per-rank exchange volumes with the observed imbalance, how the sorts
// terminated, and whether skew-aware duplicate splitting engaged.
//
// Multiple trace files — one per rank or per sdsnode process — are
// merged into a single timeline before analysis. When every event
// carries a wall-clock stamp and the trace holds clock.offset events
// (multi-process runs emit them at world formation), the merge and the
// chrome export are clock-aligned across processes.
//
//	sdssort -in zipf.f64 -trace run.jsonl
//	sdstrace run.jsonl
//	sdstrace rank0.jsonl rank1.jsonl rank2.jsonl
//	sdstrace -format chrome run.jsonl > timeline.json   # Perfetto / chrome://tracing
//	sdstrace -critical-path run.jsonl                   # slowest-rank attribution
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"sdssort/internal/buildinfo"
	"sdssort/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdstrace: ")
	format := flag.String("format", "summary", "output format: summary | chrome (Perfetto/chrome://tracing JSON)")
	critPath := flag.Bool("critical-path", false, "print the per-phase critical path (slowest rank per phase) instead of the summary")
	version := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("sdstrace"))
		return
	}
	if flag.NArg() < 1 {
		log.Fatal("usage: sdstrace [-format chrome] [-critical-path] <trace.jsonl> [more.jsonl ...]")
	}
	var events []trace.Event
	for _, name := range flag.Args() {
		part, err := readFile(name)
		if err != nil {
			log.Fatal(err)
		}
		events = append(events, part...)
	}
	if flag.NArg() > 1 {
		mergeTimelines(events)
	}
	switch {
	case *critPath:
		cp, ok := trace.CriticalPath(events)
		if !ok {
			log.Fatal("no complete root span (\"sort\") in the trace — re-run with span tracing enabled")
		}
		fmt.Print(cp.Render())
	case *format == "chrome":
		out, err := trace.ChromeTrace(events)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Println()
	case *format == "summary":
		fmt.Print(trace.Analyze(events).Render())
	default:
		log.Fatalf("unknown -format %q (want summary or chrome)", *format)
	}
}

// mergeTimelines interleaves per-process traces into one timeline.
// Per-process elapsed clocks each start at their own zero, so when
// every event carries a wall-clock stamp the merge orders by offset-
// corrected wall time (clock.offset events, emitted at world formation,
// project each process onto rank 0's clock); otherwise it falls back to
// raw elapsed time, preserving each file's internal order among ties.
func mergeTimelines(events []trace.Event) {
	useUnix := true
	for _, e := range events {
		if e.UnixUS == 0 {
			useUnix = false
			break
		}
	}
	if useUnix {
		offs := trace.ClockOffsets(events)
		sort.SliceStable(events, func(i, j int) bool {
			return events[i].UnixUS-offs[events[i].Rank] < events[j].UnixUS-offs[events[j].Rank]
		})
		return
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ElapsedUS < events[j].ElapsedUS
	})
}

func readFile(name string) ([]trace.Event, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return events, nil
}
