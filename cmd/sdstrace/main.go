// Command sdstrace summarises a JSONL event trace produced by
// cmd/sdssort -trace (or sdssort.TraceJSON): event counts per kind,
// per-rank exchange volumes with the observed imbalance, and whether
// skew-aware duplicate splitting engaged.
//
//	sdssort -in zipf.f64 -trace run.jsonl
//	sdstrace run.jsonl
package main

import (
	"fmt"
	"log"
	"os"

	"sdssort/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdstrace: ")
	if len(os.Args) != 2 {
		log.Fatal("usage: sdstrace <trace.jsonl>")
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.Analyze(events).Render())
}
