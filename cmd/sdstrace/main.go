// Command sdstrace summarises a JSONL event trace produced by
// cmd/sdssort -trace (or sdssort.TraceJSON): event counts per kind,
// per-rank exchange volumes with the observed imbalance, how the sorts
// terminated, and whether skew-aware duplicate splitting engaged.
//
// Multiple trace files — one per rank or per sdsnode process — are
// merged into a single timeline by elapsed time before analysis:
//
//	sdssort -in zipf.f64 -trace run.jsonl
//	sdstrace run.jsonl
//	sdstrace rank0.jsonl rank1.jsonl rank2.jsonl
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"sdssort/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdstrace: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: sdstrace <trace.jsonl> [more.jsonl ...]")
	}
	var events []trace.Event
	for _, name := range os.Args[1:] {
		part, err := readFile(name)
		if err != nil {
			log.Fatal(err)
		}
		events = append(events, part...)
	}
	if len(os.Args) > 2 {
		// Per-process traces each start their own clock; a stable sort on
		// elapsed time interleaves them into one approximate timeline
		// while preserving each file's internal order among ties.
		sort.SliceStable(events, func(i, j int) bool {
			return events[i].ElapsedUS < events[j].ElapsedUS
		})
	}
	fmt.Print(trace.Analyze(events).Render())
}

func readFile(name string) ([]trace.Event, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return events, nil
}
