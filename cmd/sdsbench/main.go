// Command sdsbench regenerates the tables and figures of the SDS-Sort
// paper's evaluation on this machine.
//
// Usage:
//
//	sdsbench -exp fig7            # one experiment
//	sdsbench -exp fig5a,tab3      # several
//	sdsbench -exp all             # the whole evaluation
//	sdsbench -list                # what exists
//	sdsbench -exp all -quick      # small sizes, seconds instead of minutes
//
// Each experiment prints rows/series matching the corresponding paper
// artifact; EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sdssort/internal/algo"
	"sdssort/internal/buildinfo"
	"sdssort/internal/experiments"
)

// writeCSV dumps each of the result's tables as <dir>/<id>-<n>.csv so
// the series can be plotted next to the paper's figures.
func writeCSV(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tbl := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s-%d.csv", res.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tbl.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		quick    = flag.Bool("quick", false, "shrink data sizes for a fast pass")
		seed     = flag.Int64("seed", 42, "workload seed")
		list     = flag.Bool("list", false, "list available experiments")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		algoName = flag.String("algo", "", "restrict the algorithm-comparison experiments to one driver: "+strings.Join(algo.Names(), " | "))
		ver      = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *ver {
		fmt.Println(buildinfo.String("sdsbench"))
		return
	}

	if *algoName != "" {
		if _, ok := algo.Lookup(*algoName); !ok {
			fmt.Fprintln(os.Stderr, &algo.UnknownError{Name: *algoName})
			os.Exit(2)
		}
	}

	if *list || *exp == "" {
		fmt.Println("available experiments (paper artifact — description):")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-9s %s\n", id, experiments.About(id))
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id>[,<id>...] or -exp all")
			os.Exit(2)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Algo: *algoName}
	failed := 0
	for _, id := range ids {
		run, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		start := time.Now()
		res, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(res.String())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "%s: csv: %v\n", id, err)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
