package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("SDSBENCH_CLI_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SDSBENCH_CLI_CHILD=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestListExperiments(t *testing.T) {
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, id := range []string{"fig5a", "fig8", "tab3", "baselines", "tausweep"} {
		if !strings.Contains(out, id) {
			t.Fatalf("listing missing %s:\n%s", id, out)
		}
	}
}

func TestRunOneExperimentQuick(t *testing.T) {
	out, err := runCLI(t, "-exp", "tab2", "-quick")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "tab2 completed") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	out, err := runCLI(t, "-exp", "tab2", "-quick", "-csv", dir)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "tab2-0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "δ analytic") {
		t.Fatalf("csv content:\n%s", blob)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	if out, err := runCLI(t, "-exp", "nope"); err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
}
