package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"sdssort/internal/codec"
	"sdssort/internal/recordio"
	"sdssort/internal/workload"
)

// TestMain lets the test binary impersonate the CLI: when the marker
// environment variable is set, run main() with the given arguments
// instead of the tests — the standard pattern for exercising a command
// end to end without shelling out to `go run`.
func TestMain(m *testing.M) {
	if os.Getenv("SDSSORT_CLI_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI invokes this test binary as the CLI with args.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SDSSORT_CLI_CHILD=1")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLISortRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	out := filepath.Join(dir, "out.f64")
	keys := workload.ZipfKeys(1, 20000, 1.4, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, codec.Float64{}, keys); err != nil {
		t.Fatal(err)
	}
	stdout, err := runCLI(t, "-in", in, "-out", out, "-nodes", "2", "-cores", "2", "-stable")
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	if !strings.Contains(stdout, "sorted 20000 records") {
		t.Fatalf("unexpected output:\n%s", stdout)
	}
	got, err := recordio.ReadFile(out, codec.Float64{})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatal("CLI output is not the sorted input")
	}
}

func TestCLIBaselineAlgos(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	if err := recordio.WriteFile(in, codec.Float64{}, workload.Uniform(2, 5000)); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"hyksort", "psrs"} {
		stdout, err := runCLI(t, "-in", in, "-algo", algo, "-verify=false")
		if err != nil {
			t.Fatalf("%s: %v\n%s", algo, err, stdout)
		}
		if !strings.Contains(stdout, "sorted 5000 records with "+algo) {
			t.Fatalf("%s output:\n%s", algo, stdout)
		}
	}
}

func TestCLIExternalSort(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	out := filepath.Join(dir, "out.f64")
	keys := workload.Uniform(3, 30000)
	if err := recordio.WriteFile(in, codec.Float64{}, keys); err != nil {
		t.Fatal(err)
	}
	stdout, err := runCLI(t, "-in", in, "-out", out, "-algo", "external", "-chunk", "4000")
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	got, err := recordio.ReadFile(out, codec.Float64{})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) || len(got) != len(keys) {
		t.Fatal("external sort output wrong")
	}
}

func TestCLICSVInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "keys.csv")
	out := filepath.Join(dir, "out.f64")
	if err := os.WriteFile(in, []byte("id,score\n1,0.9\n2,0.1\n3,0.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, err := runCLI(t, "-in", in, "-type", "csv", "-col", "1", "-out", out, "-stats=false")
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	got, err := recordio.ReadFile(out, codec.Float64{})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []float64{0.1, 0.5, 0.9}) {
		t.Fatalf("got %v", got)
	}
}

func TestCLITraceOutput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	trc := filepath.Join(dir, "run.jsonl")
	if err := recordio.WriteFile(in, codec.Float64{}, workload.Uniform(4, 3000)); err != nil {
		t.Fatal(err)
	}
	if out, err := runCLI(t, "-in", in, "-trace", trc, "-stats=false"); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	blob, err := os.ReadFile(trc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "sort.start") {
		t.Fatalf("trace missing events:\n%s", blob)
	}
}

func TestCLIErrors(t *testing.T) {
	if _, err := runCLI(t, "-in", "/nonexistent/file"); err == nil {
		t.Fatal("missing input accepted")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	if err := recordio.WriteFile(in, codec.Float64{}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "-in", in, "-type", "bogus"); err == nil {
		t.Fatal("bogus type accepted")
	}
	if _, err := runCLI(t, "-in", in, "-algo", "bogus"); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if _, err := runCLI(t, "-in", in, "-algo", "external"); err == nil {
		t.Fatal("external without -out accepted")
	}
}

// TestCLITraceWriteFailure points -trace at /dev/full: the sort itself
// succeeds, but the trace file lost every event to ENOSPC, so the run
// must exit non-zero and say so instead of shipping a silently
// truncated trace. (Before the deliberate finalisation this passed with
// exit 0.)
func TestCLITraceWriteFailure(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available on this platform")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	if err := recordio.WriteFile(in, codec.Float64{}, workload.Uniform(3, 2000)); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-in", in, "-verify=false", "-trace", "/dev/full")
	if err == nil {
		t.Fatalf("full trace device accepted with exit 0:\n%s", out)
	}
	if !strings.Contains(out, "trace: write failed") || !strings.Contains(out, "incomplete") {
		t.Fatalf("no clear trace-loss message:\n%s", out)
	}
}

// TestCLITraceWrites is the happy path of the same contract: a healthy
// -trace run exits 0 and leaves a parseable JSONL file behind.
func TestCLITraceWrites(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	trc := filepath.Join(dir, "run.jsonl")
	if err := recordio.WriteFile(in, codec.Float64{}, workload.Uniform(4, 2000)); err != nil {
		t.Fatal(err)
	}
	if out, err := runCLI(t, "-in", in, "-verify=false", "-trace", trc); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(trc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"sort.start"`) {
		t.Fatalf("trace missing sort.start:\n%.400s", data)
	}
}

// TestCLISpilledSort is the out-of-core quick-start: a file 8× the
// per-rank budget is sorted with -mem and -spill-dir, never resident,
// and the committed output is byte-identical to the sorted input.
func TestCLISpilledSort(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	out := filepath.Join(dir, "out.f64")
	spill := filepath.Join(dir, "spill")
	if err := os.MkdirAll(spill, 0o755); err != nil {
		t.Fatal(err)
	}
	const n = 40000 // 320 KB across 4 ranks = 80 KB per rank
	keys := workload.ZipfKeys(9, n, 1.3, workload.DefaultZipfUniverse)
	if err := recordio.WriteFile(in, codec.Float64{}, keys); err != nil {
		t.Fatal(err)
	}
	// An 80 KB shard under a 64 KB budget cannot be sorted resident —
	// the whole pipeline (chunks, staging window, merges) must honour
	// the budget out of core.
	stdout, err := runCLI(t, "-in", in, "-out", out,
		"-nodes", "2", "-cores", "2", "-stable",
		"-mem", "65536", "-spill-dir", spill)
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	for _, want := range []string{"spill-sorted 40000 records", "verified: output globally sorted", "wrote " + out} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("output missing %q:\n%s", want, stdout)
		}
	}
	got, err := recordio.ReadFile(out, codec.Float64{})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatal("spilled CLI output is not the sorted input")
	}
	// Every spill run was cleaned up on exit.
	ents, err := os.ReadDir(spill)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after the run: %v", ents)
	}
}

// TestCLISpilledSortErrors: the spill tier is sds-only and file-backed.
func TestCLISpilledSortErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.f64")
	if err := recordio.WriteFile(in, codec.Float64{}, []float64{2, 1}); err != nil {
		t.Fatal(err)
	}
	if out, err := runCLI(t, "-in", in, "-spill-dir", dir, "-algo", "hyksort"); err == nil {
		t.Fatalf("-spill-dir with hyksort accepted:\n%s", out)
	}
	if out, err := runCLI(t, "-in", in, "-spill-dir", dir, "-type", "csv"); err == nil {
		t.Fatalf("-spill-dir with csv accepted:\n%s", out)
	}
}
