// Command sdssort sorts a binary record file on an in-process cluster
// using SDS-Sort (or one of the baselines) and writes the sorted file.
//
// Usage:
//
//	sdssort -in zipf.f64 -out sorted.f64 -nodes 4 -cores 2
//	sdssort -in ptf.rec  -type ptf -stable -out sorted.rec
//	sdssort -in zipf.f64 -algo hyksort -out sorted.f64
//
// The input is split evenly across the ranks, sorted collectively, and
// the rank outputs are concatenated in order. -stats prints the phase
// breakdown and the RDFA load-balance metric.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sdssort/internal/algo"
	"sdssort/internal/buildinfo"
	"sdssort/internal/cluster"
	"sdssort/internal/codec"
	"sdssort/internal/comm"
	"sdssort/internal/core"
	"sdssort/internal/extsort"
	"sdssort/internal/memlimit"
	"sdssort/internal/metrics"
	"sdssort/internal/recordio"
	"sdssort/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdssort: ")
	var (
		in       = flag.String("in", "", "input record file (required)")
		out      = flag.String("out", "", "output file (omit to discard)")
		typ      = flag.String("type", "f64", "record type: f64 | ptf | cosmo | csv")
		col      = flag.Int("col", 0, "CSV column holding the numeric key (csv type only)")
		algoName = flag.String("algo", "sds", "algorithm: "+strings.Join(algo.Names(), " | ")+" | external")
		chunk    = flag.Int("chunk", 1<<20, "records per in-memory chunk (external only)")
		nodes    = flag.Int("nodes", 2, "simulated nodes")
		cores    = flag.Int("cores", 2, "ranks per node")
		stable   = flag.Bool("stable", false, "stable sort (sds only)")
		tauM     = flag.Int64("taum", core.DefaultOptions().TauM, "node-merge threshold τm (bytes)")
		tauO     = flag.Int("tauo", core.DefaultOptions().TauO, "overlap threshold τo (ranks)")
		tauS     = flag.Int("taus", core.DefaultOptions().TauS, "merge-vs-sort threshold τs (ranks)")
		stage    = flag.Int64("stage", 0, "staging window for the data exchange in bytes (0 = monolithic all-to-all)")
		stats    = flag.Bool("stats", true, "print phase breakdown and RDFA")
		verify   = flag.Bool("verify", true, "run the distributed sortedness check after the sort")
		trc      = flag.String("trace", "", "write a JSONL event trace to this file")

		memB       = flag.Int64("mem", 0, "per-rank memory budget in bytes; with -spill-dir a fixed budget sorts inputs of any size (0 = unlimited)")
		spillDir   = flag.String("spill-dir", "", "enable the out-of-core spill tier: stream the input and spill sorted runs here instead of holding the shard resident (sds only)")
		spillChunk = flag.Int("spill-chunk", 0, "records per streamed in-memory run with -spill-dir (0 = derive from -mem)")
		version    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("sdssort"))
		return
	}
	if *in == "" {
		log.Fatal("-in input file is required")
	}
	if *algoName == "external" {
		if *out == "" {
			log.Fatal("-out is required with -algo external")
		}
		runExternal(*in, *out, *typ, *col, *chunk, *cores, *stable)
		return
	}
	// Validate the driver name against the registry up front so a typo
	// prints the available names instead of failing mid-run.
	info, ok := algo.Lookup(*algoName)
	if !ok {
		log.Fatal(&algo.UnknownError{Name: *algoName})
	}
	if *stable && !info.Caps.Stable {
		log.Fatalf("-stable requires a stable-capable algorithm (%q is not; use sds or auto)", *algoName)
	}
	// The trace file is finalised deliberately: JSONL latches its first
	// write error, so without checking Err() a full disk would silently
	// truncate the trace while the command exits 0. finishTrace runs
	// after the sort and turns either a latched write error or a close
	// error into a non-zero exit. (Failure paths inside the sort exit
	// via log.Fatal already — only the success path needs this.)
	var tracer trace.Tracer
	finishTrace := func() {}
	if *trc != "" {
		f, err := os.Create(*trc)
		if err != nil {
			log.Fatal(err)
		}
		jl := trace.NewJSONL(f)
		tracer = jl
		name := *trc
		finishTrace = func() {
			if err := jl.Err(); err != nil {
				log.Fatalf("trace: write failed, %s is incomplete: %v", name, err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("trace: close %s: %v", name, err)
			}
		}
	}
	if *spillDir != "" {
		if *algoName != "sds" {
			log.Fatalf("-spill-dir requires -algo sds (got %q)", *algoName)
		}
		sc := spillConfig{
			nodes: *nodes, cores: *cores, stable: *stable,
			stage: *stage, mem: *memB, dir: *spillDir, chunk: *spillChunk,
			stats: *stats, verify: *verify, tracer: tracer,
		}
		switch *typ {
		case "f64":
			runSpilled(*in, *out, codec.Float64{}, cmpOrdered[float64], sc)
		case "ptf":
			runSpilled(*in, *out, codec.PTFCodec{}, codec.ComparePTF, sc)
		case "cosmo":
			runSpilled(*in, *out, codec.ParticleCodec{}, codec.CompareParticles, sc)
		default:
			log.Fatalf("-spill-dir needs a file-backed record type (f64 | ptf | cosmo), not %q", *typ)
		}
		finishTrace()
		return
	}
	switch *typ {
	case "f64":
		run(*in, *out, codec.Float64{}, cmpOrdered[float64], *algoName, *nodes, *cores, *stable, *tauM, *tauO, *tauS, *stage, *memB, *stats, *verify, tracer)
	case "csv":
		keys, err := recordio.ReadCSVColumn(*in, *col)
		if err != nil {
			log.Fatal(err)
		}
		runRecords(keys, *out, codec.Float64{}, cmpOrdered[float64], *algoName, *nodes, *cores, *stable, *tauM, *tauO, *tauS, *stage, *memB, *stats, *verify, tracer)
	case "ptf":
		run(*in, *out, codec.PTFCodec{}, codec.ComparePTF, *algoName, *nodes, *cores, *stable, *tauM, *tauO, *tauS, *stage, *memB, *stats, *verify, tracer)
	case "cosmo":
		run(*in, *out, codec.ParticleCodec{}, codec.CompareParticles, *algoName, *nodes, *cores, *stable, *tauM, *tauO, *tauS, *stage, *memB, *stats, *verify, tracer)
	default:
		log.Fatalf("unknown record type %q", *typ)
	}
	finishTrace()
}

// runExternal performs the out-of-core sort: bounded memory, spill runs,
// streaming merge (package extsort).
func runExternal(in, out, typ string, col, chunk, cores int, stable bool) {
	opt := extsort.Options{ChunkRecords: chunk, Cores: cores, Stable: stable}
	start := time.Now()
	var err error
	var n int64
	switch typ {
	case "f64":
		err = extsort.SortFile(in, out, codec.Float64{}, cmpOrdered[float64], opt)
		if err == nil {
			n, err = recordio.Count[float64](out, codec.Float64{})
		}
	case "csv":
		keys, kerr := recordio.ReadCSVColumn(in, col)
		if kerr != nil {
			log.Fatal(kerr)
		}
		tmp := out + ".keys"
		if err = recordio.WriteFile(tmp, codec.Float64{}, keys); err == nil {
			defer os.Remove(tmp)
			err = extsort.SortFile(tmp, out, codec.Float64{}, cmpOrdered[float64], opt)
			n = int64(len(keys))
		}
	case "ptf":
		err = extsort.SortFile(in, out, codec.PTFCodec{}, codec.ComparePTF, opt)
		if err == nil {
			n, err = recordio.Count[codec.PTFRecord](out, codec.PTFCodec{})
		}
	case "cosmo":
		err = extsort.SortFile(in, out, codec.ParticleCodec{}, codec.CompareParticles, opt)
		if err == nil {
			n, err = recordio.Count[codec.Particle](out, codec.ParticleCodec{})
		}
	default:
		log.Fatalf("unknown record type %q for external sort", typ)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("externally sorted %d records (chunks of %d) in %v -> %s\n",
		n, chunk, time.Since(start).Round(time.Microsecond), out)
}

func cmpOrdered[T float64 | int64 | uint64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func run[T any](in, out string, cd codec.Codec[T], cmp func(a, b T) int,
	algoName string, nodes, cores int, stable bool, tauM int64, tauO, tauS int, stage, mem int64, stats, verify bool, tracer trace.Tracer) {

	records, err := recordio.ReadFile(in, cd)
	if err != nil {
		log.Fatal(err)
	}
	runRecords(records, out, cd, cmp, algoName, nodes, cores, stable, tauM, tauO, tauS, stage, mem, stats, verify, tracer)
}

// runRecords sorts already-loaded records on an in-process cluster,
// dispatching through the algorithm driver registry.
func runRecords[T any](records []T, out string, cd codec.Codec[T], cmp func(a, b T) int,
	algoName string, nodes, cores int, stable bool, tauM int64, tauO, tauS int, stage, mem int64, stats, verify bool, tracer trace.Tracer) {

	topo := cluster.Topology{Nodes: nodes, CoresPerNode: cores}
	p := topo.Size()
	per := (len(records) + p - 1) / p
	parts := make([][]T, p)
	for r := 0; r < p; r++ {
		lo := r * per
		hi := min(lo+per, len(records))
		if lo > len(records) {
			lo = len(records)
		}
		parts[r] = records[lo:hi]
	}

	timers := make([]*metrics.PhaseTimer, p)
	for i := range timers {
		timers[i] = metrics.NewPhaseTimer()
	}
	// One shared, atomic stats block across the ranks, like the shared
	// memory gauge. Every driver routes its exchange through the shared
	// core path, so the zero-copy line below reflects what the exchange
	// actually did for any -algo.
	exch := &metrics.ExchangeStats{}
	selection := &metrics.AlgoStats{}
	// Shared across the in-process ranks, like the exchange stats: the
	// skew observation is collective, and one process-wide block means
	// every rank agrees it is on.
	skew := metrics.NewSkewStats()
	var gauges []*memlimit.Gauge
	if mem > 0 {
		gauges = make([]*memlimit.Gauge, p)
		for i := range gauges {
			gauges[i] = memlimit.New(mem)
		}
	}
	drv, err := algo.New[T](algoName)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	outputs, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) ([]T, error) {
		local := append([]T(nil), parts[c.Rank()]...)
		aopt := algo.DefaultOptions()
		aopt.Core.Stable = stable
		aopt.Core.TauM = tauM
		aopt.Core.TauO = tauO
		aopt.Core.TauS = tauS
		aopt.Core.StageBytes = stage
		aopt.Core.Exchange = exch
		aopt.Core.Timer = timers[c.Rank()]
		aopt.Core.Trace = tracer
		aopt.Core.Skew = skew
		aopt.Core.Span = trace.Scope{Trace: "sdssort"}
		if gauges != nil {
			aopt.Core.Mem = gauges[c.Rank()]
		}
		aopt.Selection = selection
		sorted, err := drv.Sort(context.Background(), c, local, cd, cmp, aopt)
		if err != nil {
			return nil, err
		}
		if verify {
			if err := core.Verify(c, sorted, cd, cmp); err != nil {
				return nil, err
			}
		}
		return sorted, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	total := 0
	loads := make([]int, p)
	for r, part := range outputs {
		loads[r] = len(part)
		total += len(part)
	}
	// Under -algo auto the profile resolved a concrete driver; report
	// what actually ran.
	ran := algoName
	if algoName == algo.NameAuto {
		for _, name := range algo.Names() {
			if selection.Count(name) > 0 {
				ran = algoName + "→" + name
				break
			}
		}
	}
	fmt.Printf("sorted %d records with %s on %d×%d ranks in %v (%s)\n",
		total, ran, nodes, cores, elapsed.Round(time.Microsecond),
		metrics.FormatThroughput(metrics.Throughput(int64(total)*int64(cd.Size()), elapsed)))
	if stats {
		fmt.Printf("RDFA: %s\n", metrics.FmtRDFA(metrics.RDFA(loads)))
		merged := metrics.MergeMax(timers)
		for _, ph := range metrics.Phases() {
			fmt.Printf("  %-16s %s\n", ph.String(), metrics.FmtDur(merged[ph]))
		}
		if exch != nil {
			fmt.Printf("  %s\n", exch)
			zc := "no"
			if exch.ZeroCopyUsed() {
				zc = "yes"
			}
			fmt.Printf("  zero-copy: %s (codec eligible: %v)\n", zc, codec.IsZeroCopy(cd))
		}
		if gauges != nil {
			var peak int64
			for _, g := range gauges {
				peak = max(peak, g.Peak())
			}
			fmt.Printf("  mem peak: %d of %d bytes per rank\n", peak, mem)
		}
	}
	if out != "" {
		var flat []T
		for _, part := range outputs {
			flat = append(flat, part...)
		}
		if err := recordio.WriteFile(out, cd, flat); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
	}
}

// spillConfig bundles the knobs of the out-of-core path.
type spillConfig struct {
	nodes, cores  int
	stable        bool
	stage, mem    int64
	dir           string
	chunk         int
	stats, verify bool
	tracer        trace.Tracer
}

// runSpilled is the out-of-core driver: the input file is never loaded —
// each rank streams its shard through core.SortFileShard, spilling
// sorted runs under sc.dir, and the resulting blocks are lazily merged
// straight into the output file. With -mem set, every rank runs under a
// hard per-rank budget, so a fixed-memory invocation sorts inputs of
// any size.
func runSpilled[T any](in, out string, cd codec.Codec[T], cmp func(a, b T) int, sc spillConfig) {
	// Sweep wreckage from a previous crashed invocation before spilling
	// new runs next to it.
	if err := extsort.RemoveStaleTemps(sc.dir); err != nil {
		log.Fatal(err)
	}
	topo := cluster.Topology{Nodes: sc.nodes, CoresPerNode: sc.cores}
	p := topo.Size()
	spStats := &metrics.SpillStats{}
	exch := &metrics.ExchangeStats{}
	timers := make([]*metrics.PhaseTimer, p)
	gauges := make([]*memlimit.Gauge, p)
	for i := range timers {
		timers[i] = metrics.NewPhaseTimer()
		if sc.mem > 0 {
			gauges[i] = memlimit.New(sc.mem)
		}
	}
	sp := &core.SpillOptions{Dir: sc.dir, Force: true, ChunkRecords: sc.chunk, Stats: spStats}
	sp.FitBudget(sc.mem)
	skew := metrics.NewSkewStats()
	start := time.Now()
	blocks, err := cluster.Gather(topo, cluster.Options{}, func(c *comm.Comm) (*core.Spilled[T], error) {
		opt := core.DefaultOptions()
		opt.Stable = sc.stable
		opt.StageBytes = sc.stage
		opt.Exchange = exch
		opt.Timer = timers[c.Rank()]
		opt.Trace = sc.tracer
		opt.Mem = gauges[c.Rank()]
		opt.Spill = sp
		opt.Skew = skew
		opt.Span = trace.Scope{Trace: "sdssort"}
		return core.SortFileShard(c, in, cd, cmp, opt)
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	defer func() {
		for _, b := range blocks {
			b.Remove()
		}
	}()

	var total int64
	loads := make([]int, p)
	for r, b := range blocks {
		loads[r] = int(b.Records())
		total += b.Records()
	}
	fmt.Printf("spill-sorted %d records on %d×%d ranks in %v (%s)\n",
		total, sc.nodes, sc.cores, elapsed.Round(time.Microsecond),
		metrics.FormatThroughput(metrics.Throughput(total*int64(cd.Size()), elapsed)))
	if sc.stats {
		fmt.Printf("RDFA: %s\n", metrics.FmtRDFA(metrics.RDFA(loads)))
		merged := metrics.MergeMax(timers)
		for _, ph := range metrics.Phases() {
			fmt.Printf("  %-16s %s\n", ph.String(), metrics.FmtDur(merged[ph]))
		}
		fmt.Printf("  %s\n", exch)
		fmt.Printf("  %s\n", spStats)
		if sc.mem > 0 {
			var peak int64
			for _, g := range gauges {
				peak = max(peak, g.Peak())
			}
			fmt.Printf("  mem peak: %d of %d bytes per rank\n", peak, sc.mem)
		}
	}

	// The blocks stream through a sortedness checker and (when -out is
	// given) into a temp file committed by rename, so a failed or killed
	// run never leaves a truncated output behind. A non-regular
	// destination (/dev/null, a pipe) cannot take the rename commit —
	// renaming over it would replace the node itself — so those are
	// streamed into directly.
	check := &orderChecker[T]{cd: cd, cmp: cmp}
	if out != "" || sc.verify {
		var w io.Writer
		var dst *os.File
		rename := false
		if out != "" {
			if st, serr := os.Lstat(out); serr == nil && !st.Mode().IsRegular() {
				dst, err = os.OpenFile(out, os.O_WRONLY, 0)
			} else {
				dst, err = os.CreateTemp(filepath.Dir(out), ".sdssort-out-*")
				rename = true
			}
			if err != nil {
				log.Fatal(err)
			}
			w = dst
			if sc.verify {
				w = io.MultiWriter(dst, check)
			}
		} else {
			w = check
		}
		fail := func(err error) {
			if dst != nil {
				dst.Close()
				if rename {
					os.Remove(dst.Name())
				}
			}
			log.Fatal(err)
		}
		for _, b := range blocks {
			if err := b.Stream(w); err != nil {
				fail(err)
			}
		}
		if sc.verify {
			if check.err != nil {
				fail(check.err)
			}
			if check.n != total {
				fail(fmt.Errorf("verify: streamed %d records, expected %d", check.n, total))
			}
			fmt.Printf("verified: output globally sorted (%d records)\n", check.n)
		}
		if dst != nil {
			if err := dst.Close(); err != nil {
				fail(err)
			}
			if rename {
				if err := os.Chmod(dst.Name(), 0o644); err != nil {
					fail(err)
				}
				if err := os.Rename(dst.Name(), out); err != nil {
					fail(err)
				}
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
}

// orderChecker verifies global sortedness of a recordio stream flowing
// through it as an io.Writer, without holding more than one partial
// record — the streaming counterpart of core.Verify for the spilled
// path, where the output never exists as a slice.
type orderChecker[T any] struct {
	cd   codec.Codec[T]
	cmp  func(a, b T) int
	buf  []byte
	prev T
	n    int64
	err  error
}

func (oc *orderChecker[T]) Write(p []byte) (int, error) {
	if oc.err != nil {
		return 0, oc.err
	}
	oc.buf = append(oc.buf, p...)
	size := oc.cd.Size()
	i := 0
	for ; i+size <= len(oc.buf); i += size {
		rec := oc.cd.Unmarshal(oc.buf[i : i+size])
		if oc.n > 0 && oc.cmp(oc.prev, rec) > 0 {
			oc.err = fmt.Errorf("verify: output not sorted at record %d", oc.n)
			return 0, oc.err
		}
		oc.prev = rec
		oc.n++
	}
	oc.buf = oc.buf[:copy(oc.buf, oc.buf[i:])]
	return len(p), nil
}
