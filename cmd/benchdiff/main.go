// Command benchdiff compares two benchmark result files produced by
// `go test -json -bench ...` and fails when the new run regresses the
// old one beyond a threshold. It is the CI perf ratchet: the bench lane
// tees its JSON to a file, benchdiff diffs the PR's run against the
// baseline from main, and a hot-path regression turns the lane red
// instead of scrolling by in a log.
//
// Metrics are compared lower-is-better (ns/op, peak-staging-bytes,
// B/op, allocs/op — throughput metrics like MB/s are intentionally not
// in the default set). Runs repeated with -count=N are collapsed to the
// per-metric median, as benchstat does: unlike the minimum, the median
// of either side cannot be set by one outlier run, which is what keeps
// a lucky baseline from permanently failing honest candidates on a
// noisy runner.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"sdssort/internal/buildinfo"
)

// testEvent is the subset of the go test -json event stream benchdiff
// needs. Benchmark results ride Action "output" lines.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// samples maps "package.benchmark name → metric unit → values observed
// across repeated runs"; results is its per-metric median collapse.
type samples map[string]map[string][]float64

type results map[string]map[string]float64

// procSuffix strips the trailing -N GOMAXPROCS marker go test appends
// to benchmark names, so runs from machines with different (but pinned)
// core counts still line up.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine parses one benchmark result line ("BenchmarkX-4  12
// 16852918 ns/op  37.98 MB/s ..."), returning the normalised name and
// its metric values, or ok=false for any other line.
func parseBenchLine(line string) (name string, metrics map[string]float64, ok bool) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	// name, iteration count, then value/unit pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", nil, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false
	}
	metrics = make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	return procSuffix.ReplaceAllString(fields[0], ""), metrics, true
}

// load reads a go test -json file and collapses repeated runs of each
// benchmark to their per-metric median. Lines that are not JSON events
// or not benchmark results are skipped: a tee'd file may carry stray
// build output, and skipping is what makes that harmless.
func load(path string) (results, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	all := make(samples)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		if ev.Action != "output" {
			continue
		}
		name, metrics, ok := parseBenchLine(ev.Output)
		if !ok {
			continue
		}
		key := ev.Package + "." + name
		runs := all[key]
		if runs == nil {
			runs = make(map[string][]float64)
			all[key] = runs
		}
		for unit, v := range metrics {
			runs[unit] = append(runs[unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	res := make(results, len(all))
	for key, runs := range all {
		med := make(map[string]float64, len(runs))
		for unit, vs := range runs {
			med[unit] = median(vs)
		}
		res[key] = med
	}
	return res, nil
}

// median returns the middle value of vs (mean of the middle two for
// even counts). vs is never empty when called.
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// row is one comparison line of the report.
type row struct {
	bench, metric string
	oldV, newV    float64
	deltaPct      float64
	regressed     bool
}

func compare(oldR, newR results, metrics []string, only *regexp.Regexp, threshold float64) ([]row, int) {
	var rows []row
	matched := 0
	keys := make([]string, 0, len(oldR))
	for k := range oldR {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if only != nil && !only.MatchString(k) {
			continue
		}
		newM, ok := newR[k]
		if !ok {
			continue
		}
		matched++
		for _, unit := range metrics {
			oldV, okO := oldR[k][unit]
			newV, okN := newM[unit]
			if !okO || !okN {
				continue
			}
			var pct float64
			switch {
			case oldV != 0:
				pct = (newV - oldV) / oldV * 100
			case newV != 0:
				pct = 100 // from zero to nonzero: treat as a full regression
			}
			rows = append(rows, row{
				bench: k, metric: unit,
				oldV: oldV, newV: newV, deltaPct: pct,
				regressed: pct > threshold,
			})
		}
	}
	return rows, matched
}

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline go test -json bench file")
		newPath   = flag.String("new", "", "candidate go test -json bench file")
		threshold = flag.Float64("threshold", 15, "max allowed regression in percent")
		metricsF  = flag.String("metrics", "ns/op,peak-staging-bytes", "comma-separated lower-is-better metrics to compare")
		onlyF     = flag.String("only", "", "regexp restricting which benchmarks are compared")
		ver       = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *ver {
		fmt.Println(buildinfo.String("benchdiff"))
		return
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	var only *regexp.Regexp
	if *onlyF != "" {
		var err error
		if only, err = regexp.Compile(*onlyF); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: bad -only regexp: %v\n", err)
			os.Exit(2)
		}
	}
	oldR, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newR, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	metrics := strings.Split(*metricsF, ",")
	rows, matched := compare(oldR, newR, metrics, only, *threshold)
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark appears in both %s (%d benches) and %s (%d benches)\n",
			*oldPath, len(oldR), *newPath, len(newR))
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-64s %-20s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	regressions := 0
	for _, r := range rows {
		flagStr := ""
		if r.regressed {
			flagStr = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-64s %-20s %14.1f %14.1f %+8.1f%%%s\n",
			r.bench, r.metric, r.oldV, r.newV, r.deltaPct, flagStr)
	}
	fmt.Fprintf(w, "\n%d benchmarks compared, %d regression(s) above %.0f%%\n", matched, regressions, *threshold)
	if regressions > 0 {
		w.Flush()
		os.Exit(1)
	}
}
