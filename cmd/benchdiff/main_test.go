package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, m, ok := parseBenchLine("BenchmarkExchange/staged-zerocopy-4         \t      12\t  16852918 ns/op\t  37.98 MB/s\t     65536 peak-staging-bytes\n")
	if !ok {
		t.Fatal("did not parse a valid benchmark line")
	}
	if name != "BenchmarkExchange/staged-zerocopy" {
		t.Errorf("name = %q, want proc suffix stripped", name)
	}
	if m["ns/op"] != 16852918 || m["peak-staging-bytes"] != 65536 || m["MB/s"] != 37.98 {
		t.Errorf("metrics = %v", m)
	}
	for _, line := range []string{
		"ok  \tsdssort/internal/core\t3.8s",
		"BenchmarkFoo", // no values
		"=== RUN   TestSort",
		"goos: linux",
		"BenchmarkBar-4 notanumber 5 ns/op",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}

// writeBenchFile emits a go test -json file with each benchmark's runs,
// interleaved with the non-bench noise a tee'd CI log carries.
func writeBenchFile(t *testing.T, name string, runs map[string][]string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.Encode(testEvent{Action: "start", Package: "sdssort/internal/core"})
	f.WriteString("not json at all\n")
	for bench, lines := range runs {
		_ = bench
		for _, l := range lines {
			enc.Encode(testEvent{Action: "output", Package: "sdssort/internal/core", Output: l + "\n"})
		}
	}
	enc.Encode(testEvent{Action: "output", Package: "sdssort/internal/core", Output: "PASS\n"})
	return path
}

func TestLoadTakesMedianAcrossCounts(t *testing.T) {
	path := writeBenchFile(t, "b.json", map[string][]string{
		"exchange": {
			// One outlier-fast run must not set the aggregate — the
			// median (1800) absorbs it where a minimum would not.
			"BenchmarkExchange-4 10 2000 ns/op 64 peak-staging-bytes",
			"BenchmarkExchange-4 10 1100 ns/op 64 peak-staging-bytes",
			"BenchmarkExchange-4 10 1800 ns/op 64 peak-staging-bytes",
		},
	})
	res, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	m := res["sdssort/internal/core.BenchmarkExchange"]
	if m == nil {
		t.Fatalf("benchmark missing from %v", res)
	}
	if m["ns/op"] != 1800 {
		t.Errorf("ns/op = %v, want the median 1800", m["ns/op"])
	}
	if m["peak-staging-bytes"] != 64 {
		t.Errorf("peak-staging-bytes = %v, want 64", m["peak-staging-bytes"])
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{5}); got != 5 {
		t.Errorf("median of one = %v", got)
	}
	if got := median([]float64{4, 1}); got != 2.5 {
		t.Errorf("median of two = %v", got)
	}
	if got := median([]float64{9, 1, 5, 7, 3}); got != 5 {
		t.Errorf("median of five = %v", got)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldR := results{
		"p.BenchmarkA": {"ns/op": 1000, "peak-staging-bytes": 100},
		"p.BenchmarkB": {"ns/op": 1000},
		"p.BenchmarkC": {"ns/op": 1000}, // missing from new: ignored
	}
	newR := results{
		"p.BenchmarkA": {"ns/op": 1300, "peak-staging-bytes": 100}, // +30%: regression
		"p.BenchmarkB": {"ns/op": 1100},                            // +10%: within threshold
		"p.BenchmarkD": {"ns/op": 5},                               // new bench: ignored
	}
	rows, matched := compare(oldR, newR, []string{"ns/op", "peak-staging-bytes"}, nil, 15)
	if matched != 2 {
		t.Fatalf("matched %d benchmarks, want 2", matched)
	}
	regressed := map[string]bool{}
	for _, r := range rows {
		if r.regressed {
			regressed[r.bench+" "+r.metric] = true
		}
	}
	if len(regressed) != 1 || !regressed["p.BenchmarkA ns/op"] {
		t.Errorf("regressions = %v, want exactly BenchmarkA ns/op", regressed)
	}

	// Tightening the threshold catches B too.
	rows, _ = compare(oldR, newR, []string{"ns/op"}, nil, 5)
	n := 0
	for _, r := range rows {
		if r.regressed {
			n++
		}
	}
	if n != 2 {
		t.Errorf("at 5%% threshold got %d regressions, want 2", n)
	}

	// The -only filter narrows the comparison.
	_, matched = compare(oldR, newR, []string{"ns/op"}, regexp.MustCompile("BenchmarkB$"), 15)
	if matched != 1 {
		t.Errorf("with -only BenchmarkB matched %d, want 1", matched)
	}

	// Disjoint files: nothing to compare.
	_, matched = compare(oldR, results{"q.BenchmarkZ": {"ns/op": 1}}, []string{"ns/op"}, nil, 15)
	if matched != 0 {
		t.Errorf("disjoint files matched %d benchmarks", matched)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	oldR := results{"p.BenchmarkA": {"peak-staging-bytes": 0}}
	newR := results{"p.BenchmarkA": {"peak-staging-bytes": 4096}}
	rows, _ := compare(oldR, newR, []string{"peak-staging-bytes"}, nil, 15)
	if len(rows) != 1 || !rows[0].regressed {
		t.Fatalf("zero-to-nonzero must regress, got %+v", rows)
	}
	// Zero to zero is fine.
	rows, _ = compare(oldR, results{"p.BenchmarkA": {"peak-staging-bytes": 0}}, []string{"peak-staging-bytes"}, nil, 15)
	if rows[0].regressed {
		t.Fatal("zero-to-zero flagged as regression")
	}
}
