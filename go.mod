module sdssort

go 1.22
